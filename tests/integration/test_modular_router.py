"""End-to-end tests of the composed modular router (P4, paper Fig. 8)."""

import pytest

from repro.net.build import dissect, layer_fields
from repro.net.ethernet import mac
from repro.net.ipv4 import ip4
from repro.net.ipv6 import ip6

from tests.integration.helpers import (
    MAC_A,
    MAC_B,
    eth_ipv4,
    eth_ipv6,
    make_instance,
)


@pytest.fixture(scope="module")
def router():
    return make_instance("P4", "micro")


class TestIPv4Routing:
    def test_forwards_on_lpm_hit(self, router):
        outs = router.process(eth_ipv4(dst="10.0.0.5"), 1)
        assert len(outs) == 1
        assert outs[0].port == 2

    def test_more_specific_prefix_wins(self, router):
        outs = router.process(eth_ipv4(dst="10.1.2.3"), 1)
        assert outs[0].port == 3

    def test_mac_rewrite(self, router):
        outs = router.process(eth_ipv4(), 1)
        eth = layer_fields(dissect(outs[0].packet), "ethernet")
        assert eth["dstAddr"] == mac(MAC_A)
        assert eth["srcAddr"] == mac(MAC_B)

    def test_ttl_decremented(self, router):
        outs = router.process(eth_ipv4(ttl=64), 1)
        assert layer_fields(dissect(outs[0].packet), "ipv4")["ttl"] == 63

    def test_payload_preserved(self, router):
        outs = router.process(eth_ipv4(payload=b"PRESERVE-ME"), 1)
        assert outs[0].packet.tobytes().endswith(b"PRESERVE-ME")

    def test_no_route_drops(self, router):
        assert router.process(eth_ipv4(dst="172.16.0.1"), 1) == []

    def test_ttl_zero_drops(self, router):
        assert router.process(eth_ipv4(ttl=0), 1) == []

    def test_ttl_one_still_forwarded(self, router):
        outs = router.process(eth_ipv4(ttl=1), 1)
        assert len(outs) == 1
        assert layer_fields(dissect(outs[0].packet), "ipv4")["ttl"] == 0

    def test_other_ipv4_fields_untouched(self, router):
        outs = router.process(eth_ipv4(src="1.2.3.4"), 1)
        v4 = layer_fields(dissect(outs[0].packet), "ipv4")
        assert v4["srcAddr"] == ip4("1.2.3.4")
        assert v4["dstAddr"] == ip4("10.0.0.5")
        assert v4["version"] == 4 and v4["ihl"] == 5


class TestIPv6Routing:
    def test_forwards(self, router):
        outs = router.process(eth_ipv6(dst="2001:db8::5"), 1)
        assert outs[0].port == 4

    def test_hop_limit_decremented(self, router):
        outs = router.process(eth_ipv6(hop=10), 1)
        assert layer_fields(dissect(outs[0].packet), "ipv6")["hopLimit"] == 9

    def test_address_preserved(self, router):
        outs = router.process(eth_ipv6(), 1)
        v6 = layer_fields(dissect(outs[0].packet), "ipv6")
        assert v6["dstAddr"] == ip6("2001:db8::5")

    def test_no_route_drops(self, router):
        assert router.process(eth_ipv6(dst="fe80::1"), 1) == []


class TestEdgeCases:
    def test_unknown_ethertype_drops(self, router):
        from repro.net.build import PacketBuilder

        pkt = (
            PacketBuilder()
            .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x9999)
            .payload(b"x")
            .build()
        )
        assert router.process(pkt, 1) == []

    def test_truncated_ipv4_drops(self, router):
        from repro.net.build import PacketBuilder
        from repro.net.packet import Packet

        full = eth_ipv4()
        truncated = Packet(full.tobytes()[:20])  # eth + 6 bytes of ipv4
        assert router.process(truncated, 1) == []

    def test_packet_length_unchanged(self, router):
        pkt = eth_ipv4()
        original = len(pkt)
        outs = router.process(pkt, 1)
        assert len(outs[0].packet) == original

    def test_consecutive_packets_isolated(self, router):
        """Pipeline state must not leak between packets."""
        first = router.process(eth_ipv4(dst="10.0.0.5"), 1)
        dropped = router.process(eth_ipv4(dst="172.16.0.1"), 1)
        second = router.process(eth_ipv4(dst="10.0.0.5"), 1)
        assert first[0].port == second[0].port == 2
        assert dropped == []


class TestRuntimeApi:
    def test_tables_listed(self, router):
        from repro.targets.runtime_api import RuntimeAPI

        api = RuntimeAPI(router)
        names = api.tables()
        assert any(n.endswith("forward_tbl") for n in names)
        assert any(n.endswith("parser_tbl") for n in names)

    def test_user_tables_exclude_synthesized(self, router):
        from repro.targets.runtime_api import RuntimeAPI

        api = RuntimeAPI(router)
        for name in api.user_tables():
            assert "parser_tbl" not in name and "deparser_tbl" not in name

    def test_unknown_table_rejected(self, router):
        from repro.errors import TargetError
        from repro.targets.runtime_api import RuntimeAPI

        with pytest.raises(TargetError):
            RuntimeAPI(router).add_entry("nope_tbl", [1], "forward", [])

    def test_unknown_action_rejected(self, router):
        from repro.errors import TargetError
        from repro.targets.runtime_api import RuntimeAPI

        with pytest.raises(TargetError):
            RuntimeAPI(router).add_entry("forward_tbl", [1], "teleport", [])
