"""Property-based differential testing of composed vs monolithic P4.

Hypothesis generates packets over the interesting input space (random
addresses, TTLs, etherTypes, truncations); the composed modular router
and its monolithic baseline must agree byte-for-byte on every one.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net.build import PacketBuilder
from repro.net.packet import Packet

from tests.integration.helpers import make_instance


@pytest.fixture(scope="module")
def routers():
    return make_instance("P4", "micro"), make_instance("P4", "mono")


def assert_equivalent(routers, pkt):
    micro, mono = routers
    a = micro.process(pkt.copy(), 1)
    b = mono.process(pkt.copy(), 1)
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.port == y.port
        assert x.packet.tobytes() == y.packet.tobytes()


ipv4_addr = st.integers(0, 2**32 - 1)
ipv6_addr = st.integers(0, 2**128 - 1)


@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    dst=ipv4_addr,
    src=ipv4_addr,
    ttl=st.integers(0, 255),
    proto=st.integers(0, 255),
    payload=st.binary(max_size=32),
)
def test_ipv4_equivalence(routers, dst, src, ttl, proto, payload):
    from repro.net.ipv4 import IPV4

    ip = IPV4.encode(
        dict(version=4, ihl=5, diffserv=0, totalLen=20 + len(payload),
             identification=0, flags=0, fragOffset=0, ttl=ttl,
             protocol=proto, hdrChecksum=0, srcAddr=src, dstAddr=dst)
    )
    eth = (
        PacketBuilder()
        .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x0800)
        .build()
        .tobytes()
    )
    assert_equivalent(routers, Packet(eth + ip + payload))


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(dst=ipv6_addr, hop=st.integers(0, 255))
def test_ipv6_equivalence(routers, dst, hop):
    from repro.net.ipv6 import IPV6

    ip6 = IPV6.encode(
        dict(version=6, trafficClass=0, flowLabel=0, payloadLen=0,
             nextHdr=59, hopLimit=hop, srcAddr=1, dstAddr=dst)
    )
    eth = (
        PacketBuilder()
        .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x86DD)
        .build()
        .tobytes()
    )
    assert_equivalent(routers, Packet(eth + ip6))


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    ether_type=st.integers(0, 0xFFFF),
    body=st.binary(max_size=60),
)
def test_arbitrary_ethertype_equivalence(routers, ether_type, body):
    eth = (
        PacketBuilder()
        .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", ether_type)
        .build()
        .tobytes()
    )
    assert_equivalent(routers, Packet(eth + body))


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(length=st.integers(0, 54))
def test_truncated_packets_equivalence(routers, length):
    """Short packets must be handled identically (parser error paths)."""
    full = (
        PacketBuilder()
        .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x0800)
        .ipv4("10.0.0.1", "10.0.0.5", 6)
        .payload(b"xxxxxxxxxxxxxxxxxxxx")
        .build()
        .tobytes()
    )
    assert_equivalent(routers, Packet(full[:length]))
