"""Tests for the module library loader and the composition catalog."""

import pytest

from repro.errors import CompileError
from repro.frontend.json_ir import dump_module, load_module
from repro.lib.catalog import (
    COMPOSITIONS,
    EXTRA_COMPOSITIONS,
    MODULE_MATRIX,
    MODULES,
    PROGRAMS,
    build_monolithic,
    build_pipeline,
    composition_matrix,
    link_composition,
)
from repro.lib.loader import compile_library_module, list_sources, load_module_source


class TestLoader:
    def test_lists_modules(self):
        names = list_sources("modules")
        for expected in ("eth", "ipv4", "ipv6", "acl", "mpls", "nat",
                         "nptv6", "srv4", "srv6", "vlan"):
            assert expected in names

    def test_lists_monolithic(self):
        assert list_sources("monolithic") == [
            "p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8",
        ]

    def test_source_text(self):
        text = load_module_source("ipv4")
        assert "program IPv4" in text

    def test_unknown_source_names_alternatives(self):
        with pytest.raises(CompileError) as exc:
            load_module_source("quic")
        assert "ipv4" in str(exc.value)

    def test_compile_cached(self):
        a = compile_library_module("ipv4")
        b = compile_library_module("ipv4")
        assert a is b

    @pytest.mark.parametrize("name", sorted(set(
        module for recipe in COMPOSITIONS.values() for module in recipe
    )))
    def test_every_module_compiles(self, name):
        module = compile_library_module(name)
        assert module.programs

    @pytest.mark.parametrize("name", ["eth", "ipv4", "srv6", "mpls"])
    def test_library_ir_roundtrips(self, name):
        module = compile_library_module(name)
        restored = load_module(dump_module(module))
        assert set(restored.programs) == set(module.programs)


class TestCatalog:
    def test_program_list(self):
        assert PROGRAMS == ["P1", "P2", "P3", "P4", "P5", "P6", "P7"]
        assert "P8" in EXTRA_COMPOSITIONS

    def test_matrix_consistent_with_modules(self):
        assert set(MODULE_MATRIX) == set(MODULES)
        for module in MODULES:
            assert set(MODULE_MATRIX[module]) == set(PROGRAMS)

    def test_matrix_renders_all_rows(self):
        text = composition_matrix()
        for module in MODULES:
            assert module in text
        assert text.count("✓") == sum(
            1 for m in MODULES for p in PROGRAMS if MODULE_MATRIX[m][p]
        )

    def test_unknown_composition_rejected(self):
        with pytest.raises(CompileError):
            link_composition("P99")
        with pytest.raises(CompileError):
            build_monolithic("P99")

    def test_extension_composition_builds(self):
        composed = build_pipeline("P8")
        assert composed.region.extract_length == 58  # eth+vlan+ipv6

    @pytest.mark.parametrize("name", PROGRAMS)
    def test_regions_consistent(self, name):
        """El must cover eth (14) plus the largest L3 chain."""
        composed = build_pipeline(name)
        assert composed.region.extract_length >= 54
        assert composed.byte_stack_size >= composed.region.extract_length
        assert composed.region.min_packet_size == 14


class TestModuleEncapsulation:
    """Modules must not leak names into each other (paper's C1)."""

    def test_no_shared_type_names_collide_at_link(self):
        # Every leaf module declares its own ipv4 header type under a
        # unique name; linking all of them together must not clash.
        for name in PROGRAMS:
            link_composition(name)  # raises on duplicate providers

    def test_composed_variables_disjoint_per_instance(self):
        composed = build_pipeline("P1")
        hdr_vars = [v for v in composed.variables if v.endswith("_hdr")]
        assert len(hdr_vars) == len(set(hdr_vars))
        assert any("acl_i" in v for v in hdr_vars)
        assert any("ipv4_i" in v for v in hdr_vars)
