"""Tests of the µP4C command-line interface."""

import json

import pytest

from repro.cli import main
from repro.lib.loader import load_module_source


@pytest.fixture()
def module_files(tmp_path):
    paths = {}
    for name in ("eth", "l3_v4v6", "ipv4", "ipv6"):
        path = tmp_path / f"{name}.up4"
        path.write_text(load_module_source(name))
        paths[name] = str(path)
    return paths


class TestCompile:
    def test_compile_to_stdout(self, module_files, capsys):
        assert main(["compile", module_files["ipv4"]]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert payload["version"] == 1

    def test_compile_to_file(self, module_files, tmp_path, capsys):
        out_file = tmp_path / "ipv4.ir.json"
        assert main(["compile", module_files["ipv4"], "-o", str(out_file)]) == 0
        assert json.loads(out_file.read_text())["version"] == 1

    def test_compile_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.up4"
        bad.write_text("header broken {")
        assert main(["compile", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err


class TestBuild:
    def order(self, files):
        return [files["eth"], files["l3_v4v6"], files["ipv4"], files["ipv6"]]

    def test_build_v1model(self, module_files, tmp_path, capsys):
        out_file = tmp_path / "main.p4"
        rc = main(
            ["build", *self.order(module_files), "--target", "v1model",
             "-o", str(out_file)]
        )
        assert rc == 0
        text = out_file.read_text()
        assert "control Ingress()" in text
        stdout = capsys.readouterr().out
        assert "El=54B" in stdout

    def test_build_tna_report(self, module_files, capsys):
        rc = main(
            ["build", *self.order(module_files), "--target", "tna", "--report"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "stage placement" in out
        assert "PHV:" in out

    def test_build_accepts_ir_json(self, module_files, tmp_path, capsys):
        ir_file = tmp_path / "ipv4.ir.json"
        main(["compile", module_files["ipv4"], "-o", str(ir_file)])
        capsys.readouterr()
        files = self.order(module_files)
        files[2] = str(ir_file)
        assert main(["build", *files, "--target", "tna"]) == 0

    def test_build_no_align_no_split_reports_error(self, module_files, capsys):
        # Disabling both §6.3 passes makes the build fail cleanly.
        rc = main(
            ["build", *self.order(module_files), "--target", "tna",
             "--no-align", "--no-split"]
        )
        assert rc == 1
        assert "ALU" in capsys.readouterr().err

    def test_missing_provider_error(self, module_files, capsys):
        rc = main(["build", module_files["eth"], "--target", "v1model"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestInfoCommands:
    def test_arch(self, capsys):
        assert main(["arch"]) == 0
        assert "Unicast" in capsys.readouterr().out

    def test_library(self, capsys):
        assert main(["library"]) == 0
        out = capsys.readouterr().out
        assert "P4: eth + l3_v4v6 + ipv4 + ipv6" in out


class TestOptimizeFlag:
    def test_build_with_optimize(self, module_files, capsys):
        files = [module_files["eth"], module_files["l3_v4v6"],
                 module_files["ipv4"], module_files["ipv6"]]
        rc = main(["build", *files, "--target", "tna", "--optimize"])
        assert rc == 0
        out = capsys.readouterr().out
        # Fewer MATs than the unoptimized build (11 -> 6).
        assert "6 MATs" in out
