"""Tests of the µP4C command-line interface."""

import json

import pytest

from repro.cli import main
from repro.errors import EXIT_COMPILE_ERROR, EXIT_RESOURCE_ERROR
from repro.lib.loader import load_module_source


@pytest.fixture()
def module_files(tmp_path):
    paths = {}
    for name in ("eth", "l3_v4v6", "ipv4", "ipv6"):
        path = tmp_path / f"{name}.up4"
        path.write_text(load_module_source(name))
        paths[name] = str(path)
    return paths


class TestCompile:
    def test_compile_to_stdout(self, module_files, capsys):
        assert main(["compile", module_files["ipv4"]]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert payload["version"] == 1

    def test_compile_to_file(self, module_files, tmp_path, capsys):
        out_file = tmp_path / "ipv4.ir.json"
        assert main(["compile", module_files["ipv4"], "-o", str(out_file)]) == 0
        assert json.loads(out_file.read_text())["version"] == 1

    def test_compile_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.up4"
        bad.write_text("header broken {")
        assert main(["compile", str(bad)]) == EXIT_COMPILE_ERROR
        assert "error[parse-error]:" in capsys.readouterr().err

    def test_missing_file_is_clean_error(self, tmp_path, capsys):
        rc = main(["compile", str(tmp_path / "nope.up4")])
        assert rc == 1
        assert "error[io-error]:" in capsys.readouterr().err


class TestBuild:
    def order(self, files):
        return [files["eth"], files["l3_v4v6"], files["ipv4"], files["ipv6"]]

    def test_build_v1model(self, module_files, tmp_path, capsys):
        out_file = tmp_path / "main.p4"
        rc = main(
            ["build", *self.order(module_files), "--target", "v1model",
             "-o", str(out_file)]
        )
        assert rc == 0
        text = out_file.read_text()
        assert "control Ingress()" in text
        stdout = capsys.readouterr().out
        assert "El=54B" in stdout

    def test_build_tna_report(self, module_files, capsys):
        rc = main(
            ["build", *self.order(module_files), "--target", "tna", "--report"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "stage placement" in out
        assert "PHV:" in out

    def test_build_accepts_ir_json(self, module_files, tmp_path, capsys):
        ir_file = tmp_path / "ipv4.ir.json"
        main(["compile", module_files["ipv4"], "-o", str(ir_file)])
        capsys.readouterr()
        files = self.order(module_files)
        files[2] = str(ir_file)
        assert main(["build", *files, "--target", "tna"]) == 0

    def test_build_no_align_no_split_reports_error(self, module_files, capsys):
        # Disabling both §6.3 passes makes the build fail cleanly.
        rc = main(
            ["build", *self.order(module_files), "--target", "tna",
             "--no-align", "--no-split"]
        )
        assert rc == EXIT_RESOURCE_ERROR
        err = capsys.readouterr().err
        assert "error[resource-error]:" in err
        assert "ALU" in err

    def test_missing_provider_error(self, module_files, capsys):
        rc = main(["build", module_files["eth"], "--target", "v1model"])
        assert rc == EXIT_COMPILE_ERROR
        assert "error[link-error]:" in capsys.readouterr().err


class TestInfoCommands:
    def test_arch(self, capsys):
        assert main(["arch"]) == 0
        assert "Unicast" in capsys.readouterr().out

    def test_library(self, capsys):
        assert main(["library"]) == 0
        out = capsys.readouterr().out
        assert "P4: eth + l3_v4v6 + ipv4 + ipv6" in out


class TestObservabilityFlags:
    def order(self, files):
        return [files["eth"], files["l3_v4v6"], files["ipv4"], files["ipv6"]]

    def test_build_trace_prints_pass_table(self, module_files, capsys):
        rc = main(["build", *self.order(module_files), "--target", "tna",
                   "--trace"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("frontend", "midend.link", "midend.compose",
                     "backend.tna", "total"):
            assert name in out

    def test_build_metrics_file(self, module_files, tmp_path, capsys):
        metrics_file = tmp_path / "metrics.json"
        rc = main(["build", *self.order(module_files), "--target", "tna",
                   "--metrics", str(metrics_file)])
        assert rc == 0
        snap = json.loads(metrics_file.read_text())
        keys = {*snap["counters"], *snap["gauges"], *snap["histograms"]}
        # The acceptance bar: >= 10 distinct keys spanning all layers.
        assert len(keys) >= 10
        assert any(k.startswith("frontend.") for k in keys)
        assert any(k.startswith(("linker.", "analysis.", "compose."))
                   for k in keys)
        assert any(k.startswith("tna.") for k in keys)

    def test_build_metrics_stdout(self, module_files, capsys):
        rc = main(["build", *self.order(module_files), "--metrics"])
        assert rc == 0
        out = capsys.readouterr().out
        assert '"counters"' in out

    def test_build_json_output(self, module_files, capsys):
        rc = main(["build", *self.order(module_files), "--target", "tna",
                   "--json", "--trace"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "micro"
        assert payload["report"]["stages"] > 0
        assert payload["trace"], "expected recorded spans in JSON mode"

    def test_build_output_file_tna(self, module_files, tmp_path, capsys):
        out_file = tmp_path / "report.txt"
        rc = main(["build", *self.order(module_files), "--target", "tna",
                   "-o", str(out_file)])
        assert rc == 0
        text = out_file.read_text()
        assert "stage placement" in text
        assert "PHV:" in text

    def test_eval_json(self, capsys):
        rc = main(["eval", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        programs = [row["program"] for row in payload["rows"]]
        assert programs == ["P1", "P2", "P3", "P4", "P5", "P6", "P7"]
        assert all(row["stages_micro"] > 0 for row in payload["rows"])


class TestProfile:
    def test_profile_composition(self, capsys):
        rc = main(["profile", "P4"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("frontend", "midend.link", "midend.compose",
                     "backend.tna"):
            assert name in out

    def test_profile_nonzero_walltimes(self, capsys):
        rc = main(["profile", "P4", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        spans = {s["name"]: s for s in payload["trace"]}
        for name in ("frontend", "midend.link", "midend.compose",
                     "backend.tna"):
            assert spans[name]["duration_ms"] > 0.0
        assert payload["total_ms"] > 0.0
        keys = {*payload["metrics"]["counters"],
                *payload["metrics"]["gauges"],
                *payload["metrics"]["histograms"]}
        assert len(keys) >= 10

    def test_profile_module_files(self, module_files, capsys):
        rc = main(["profile", module_files["eth"], module_files["l3_v4v6"],
                   module_files["ipv4"], module_files["ipv6"],
                   "--target", "v1model"])
        assert rc == 0
        assert "backend.v1model" in capsys.readouterr().out

    def test_profile_unknown_composition_fails(self, capsys):
        rc = main(["profile", "P99"])
        assert rc == EXIT_COMPILE_ERROR
        err = capsys.readouterr().err
        assert "error[compile-error]:" in err
        assert "known: P1" in err

    def test_profile_missing_file_fails(self, tmp_path, capsys):
        rc = main(["profile", str(tmp_path / "nope.up4")])
        assert rc == 1
        assert "error[io-error]:" in capsys.readouterr().err

    def test_profile_packets_surfaces_lookup_counters(self, capsys):
        rc = main(["profile", "P4", "--packets", "30"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "behavioral run: 30 packets" in out
        assert "table lookups: indexed=" in out
        assert "lookup strategies:" in out

    def test_profile_sharded_matches_inline_lookups(self, capsys):
        rc = main(["profile", "P4", "--packets", "30", "--json"])
        assert rc == 0
        inline = json.loads(capsys.readouterr().out)["behavior"]
        rc = main(["profile", "P4", "--packets", "30", "--workers", "2",
                   "--shard-policy", "round-robin", "--json"])
        assert rc == 0
        sharded = json.loads(capsys.readouterr().out)["behavior"]
        assert sharded["workers"] == 2
        assert len(sharded["shards"]) == 2
        # Sharding never changes what the pipeline does, only where:
        # merged lookup counters equal the single-process run.
        assert sharded["lookups"] == inline["lookups"]
        assert sharded["outputs"] == inline["outputs"]
        assert sharded["table_strategies"] == inline["table_strategies"]

    def test_profile_sharded_text_mentions_workers(self, capsys):
        rc = main(["profile", "P4", "--packets", "30", "--workers", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "workers: 2 (flow-hash)" in out

    def test_profile_packets_json(self, capsys):
        rc = main(["profile", "P4", "--packets", "30", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        behavior = payload["behavior"]
        assert behavior["packets"] == 30
        assert behavior["lookups"]["indexed"] > 0
        assert (
            payload["metrics"]["counters"]["interp.lookup.indexed"]
            == behavior["lookups"]["indexed"]
        )
        assert set(behavior["table_strategies"]) <= {
            "exact-hash", "lpm-buckets", "compiled-scan",
        }


class TestOptimizeFlag:
    def test_build_with_optimize(self, module_files, capsys):
        files = [module_files["eth"], module_files["l3_v4v6"],
                 module_files["ipv4"], module_files["ipv6"]]
        rc = main(["build", *files, "--target", "tna", "--optimize"])
        assert rc == 0
        out = capsys.readouterr().out
        # Fewer MATs than the unoptimized build (11 -> 6).
        assert "6 MATs" in out


class TestSoak:
    def test_soak_smoke_text(self, capsys):
        rc = main(["soak", "--programs", "P4", "--packets", "300",
                   "--fault-rate", "0.1", "--seed", "7"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "result: OK" in out
        assert "accounting:" in out

    def test_soak_json_and_out_file(self, tmp_path, capsys):
        out_file = tmp_path / "soak.json"
        rc = main(["soak", "--programs", "P4", "--packets", "300",
                   "--seed", "7", "--json", "--out", str(out_file)])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        block = payload["programs"]["P4"]
        assert block["units"] == block["emits"] + block["drops"]
        assert json.loads(out_file.read_text())["digest"] == payload["digest"]

    def test_soak_deterministic_digest(self, capsys):
        digests = []
        for _ in range(2):
            assert main(["soak", "--programs", "P4", "--packets", "300",
                         "--seed", "11", "--json"]) == 0
            digests.append(json.loads(capsys.readouterr().out)["digest"])
        assert digests[0] == digests[1]

    def test_soak_fault_spec_file(self, tmp_path, capsys):
        spec = tmp_path / "faults.json"
        spec.write_text(json.dumps({"sites": {"table:ipv4_lpm_tbl": 0.5}}))
        rc = main(["soak", "--programs", "P4", "--packets", "300",
                   "--seed", "7", "--fault-spec", str(spec), "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert "table:ipv4_lpm_tbl" in payload["programs"]["P4"]["fault_trips"]

    def test_soak_bad_fault_spec_fails(self, tmp_path, capsys):
        spec = tmp_path / "faults.json"
        spec.write_text(json.dumps({"sites": {"warp-core": 1.0}}))
        rc = main(["soak", "--programs", "P4", "--fault-spec", str(spec)])
        assert rc != 0
        assert "error[" in capsys.readouterr().err

    def test_soak_unknown_program_fails(self, capsys):
        rc = main(["soak", "--programs", "P99", "--packets", "10"])
        assert rc != 0
        assert "unknown soak program" in capsys.readouterr().err

    def test_soak_workers_json_ok_and_deterministic(self, capsys):
        digests = []
        for _ in range(2):
            rc = main(["soak", "--programs", "P4", "--packets", "300",
                       "--seed", "7", "--workers", "2", "--json"])
            assert rc == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["ok"] is True
            block = payload["programs"]["P4"]
            assert block["workers"] == 2
            assert block["units"] == block["emits"] + block["drops"]
            assert len(block["shards"]) == 2
            digests.append(payload["digest"])
        assert digests[0] == digests[1]

    def test_soak_workers_text_lists_shards(self, capsys):
        rc = main(["soak", "--programs", "P4", "--packets", "200",
                   "--seed", "7", "--workers", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "workers=2 (flow-hash)" in out
        assert "shard 0:" in out
        assert "shard 1:" in out

    def test_soak_negative_workers_rejected(self, capsys):
        # Regression: -3 must not silently fall back to the inline path.
        rc = main(["soak", "--programs", "P4", "--packets", "10",
                   "--workers", "-3"])
        assert rc == 4
        assert "workers must be >= 1" in capsys.readouterr().err

    def test_soak_workers_unknown_program_structured_error(self, capsys):
        rc = main(["soak", "--programs", "P99", "--packets", "10",
                   "--workers", "2", "--json"])
        captured = capsys.readouterr()
        assert rc != 0
        payload = json.loads(captured.out)
        assert payload["ok"] is False
        assert "unknown soak program" in payload["error"]

    def test_soak_ingest_modes_share_a_digest(self, capsys):
        # --ingest picks the transport, never the results: the legacy
        # replay path and the dispatch pool must agree byte-for-byte.
        digests = {}
        for mode in ("replay", "dispatch"):
            rc = main(["soak", "--programs", "P4", "--packets", "300",
                       "--seed", "7", "--workers", "2",
                       "--ingest", mode, "--json"])
            assert rc == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["programs"]["P4"]["ingest"] == mode
            digests[mode] = payload["digest"]
        assert digests["replay"] == digests["dispatch"]

    def test_soak_rejects_unknown_ingest(self, capsys):
        with pytest.raises(SystemExit):
            main(["soak", "--programs", "P4", "--packets", "10",
                  "--workers", "2", "--ingest", "teleport"])
        assert "invalid choice" in capsys.readouterr().err


class TestFailureChannels:
    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        # make_parser() binds func=cmd_soak at parser-build time, so
        # patching the module attribute before main() is enough.
        import repro.cli as cli_mod

        def boom(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli_mod, "cmd_soak", boom)
        rc = cli_mod.main(["soak", "--packets", "1"])
        assert rc == 130
        assert "interrupted" in capsys.readouterr().err

    def test_keyboard_interrupt_json_is_structured(self, capsys, monkeypatch):
        import repro.cli as cli_mod

        def boom(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli_mod, "cmd_soak", boom)
        rc = cli_mod.main(["soak", "--packets", "1", "--json"])
        captured = capsys.readouterr()
        assert rc == 130
        payload = json.loads(captured.out)
        assert payload == {
            "ok": False,
            "error": "interrupted",
            "code": "interrupted",
            "exit_code": 130,
        }
        assert "interrupted" in captured.err

    def test_worker_failure_reports_engine_error(self, capsys, monkeypatch):
        # Force a worker crash through the real pool: the CLI must exit
        # non-zero with the engine's structured error in --json mode.
        from repro.targets import engine as engine_mod

        original = engine_mod.EngineConfig

        def sabotaged(**kw):
            kw["sabotage"] = "error"
            return original(**kw)

        monkeypatch.setattr(engine_mod, "EngineConfig", sabotaged)
        import repro.cli as cli_mod

        rc = cli_mod.main(["soak", "--programs", "P4", "--packets", "50",
                           "--workers", "2", "--json"])
        captured = capsys.readouterr()
        assert rc == 4
        payload = json.loads(captured.out)
        assert payload["ok"] is False
        assert payload["code"] == "engine-error"
        assert payload["shard"] == 0
        assert "error[engine-error]:" in captured.err

    def test_json_mode_reports_structured_error(self, tmp_path, capsys):
        spec = tmp_path / "faults.json"
        spec.write_text(json.dumps({"sites": {"warp-core": 1.0}}))
        rc = main(["soak", "--programs", "P4", "--packets", "10",
                   "--fault-spec", str(spec), "--json"])
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["ok"] is False
        assert payload["code"] == "target-error"
        assert payload["exit_code"] == rc
        assert "error[target-error]:" in captured.err


class TestTelemetryCli:
    def test_soak_metrics_out_writes_snapshot(self, tmp_path, capsys):
        out = tmp_path / "final.json"
        rc = main(["soak", "--programs", "P4", "--packets", "300",
                   "--seed", "7", "--workers", "2",
                   "--metrics-out", str(out), "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        snap = json.loads(out.read_text())
        assert snap["schema"] == 1
        assert len(snap["shards"]) == 2
        assert all(s["final"] for s in snap["shards"])
        assert snap["ledger"]["in"] == payload["programs"]["P4"]["packets"]
        assert "switch.latency_us.packet" in snap["latency_us"]

    def test_soak_metrics_out_single_process(self, tmp_path, capsys):
        out = tmp_path / "final.json"
        rc = main(["soak", "--programs", "P4", "--packets", "200",
                   "--seed", "7", "--metrics-out", str(out), "--json"])
        assert rc == 0
        snap = json.loads(out.read_text())
        assert snap["shards"][0]["ledger"]["in"] == 200

    def test_soak_stats_port_serves_while_running(self, tmp_path, capsys):
        # Ephemeral port; the endpoint must at least serve the final
        # rolling view before the CLI tears the server down — mid-run
        # polling is exercised by the CI smoke job with a real subprocess.
        import urllib.request
        from unittest import mock

        from repro.obs import telemetry as telemetry_mod

        polled = {}
        original_close = telemetry_mod.StatsServer.close

        def close_after_poll(self):
            with urllib.request.urlopen(f"{self.url}/stats.json") as resp:
                polled["snap"] = json.loads(resp.read().decode())
            with urllib.request.urlopen(f"{self.url}/metrics") as resp:
                polled["prom"] = resp.read().decode()
            original_close(self)

        with mock.patch.object(
            telemetry_mod.StatsServer, "close", close_after_poll
        ):
            rc = main(["soak", "--programs", "P4", "--packets", "200",
                       "--seed", "7", "--workers", "2",
                       "--stats-port", "0", "--json"])
        assert rc == 0
        assert polled["snap"]["ledger"]["in"] == 200
        assert "repro_switch_packets 200" in polled["prom"]

    def test_soak_busy_stats_port_is_reason_coded(self, capsys):
        # A port someone else holds must surface as a structured CLI
        # error (exit 4), never a raw OSError traceback.
        import socket

        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            rc = main(["soak", "--programs", "P4", "--packets", "50",
                       "--seed", "7", "--stats-port", str(port)])
            assert rc == 4
            err = capsys.readouterr().err
            assert "error[stats-port-unavailable]:" in err
            assert str(port) in err
        finally:
            blocker.close()

    def test_soak_busy_stats_port_json_is_structured(self, capsys):
        import socket

        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            rc = main(["soak", "--programs", "P4", "--packets", "50",
                       "--stats-port", str(port), "--json"])
            captured = capsys.readouterr()
            assert rc == 4
            payload = json.loads(captured.out)
            assert payload["ok"] is False
            assert payload["code"] == "stats-port-unavailable"
            assert payload["exit_code"] == 4
            assert "error[stats-port-unavailable]:" in captured.err
        finally:
            blocker.close()

    def test_soak_trace_out_streams_jsonl(self, tmp_path, capsys):
        path = tmp_path / "traces.jsonl"
        rc = main(["soak", "--programs", "P4", "--packets", "50",
                   "--seed", "7", "--trace-out", str(path), "--json"])
        assert rc == 0
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 50
        assert lines[0]["schema"] == 1
        assert lines[0]["program"] == "P4"
        assert {line["packet"] for line in lines} == set(range(50))
        assert all("events" in line for line in lines)

    def test_soak_trace_out_rejected_with_workers(self, capsys):
        rc = main(["soak", "--programs", "P4", "--packets", "50",
                   "--workers", "2", "--trace-out", "/tmp/x.jsonl"])
        assert rc != 0
        assert "single-process" in capsys.readouterr().err

    def test_soak_telemetry_does_not_change_digest(self, tmp_path, capsys):
        base_args = ["soak", "--programs", "P4", "--packets", "300",
                     "--seed", "7", "--workers", "2", "--json"]
        assert main(base_args) == 0
        plain = json.loads(capsys.readouterr().out)["digest"]
        out = tmp_path / "final.json"
        assert main(base_args + ["--metrics-out", str(out)]) == 0
        live = json.loads(capsys.readouterr().out)["digest"]
        assert plain == live

    def test_stats_reads_snapshot_file(self, tmp_path, capsys):
        out = tmp_path / "final.json"
        assert main(["soak", "--programs", "P4", "--packets", "200",
                     "--seed", "7", "--metrics-out", str(out), "--json"]) == 0
        capsys.readouterr()
        assert main(["stats", str(out)]) == 0
        text = capsys.readouterr().out
        assert "telemetry snapshot (schema 1" in text
        assert "P4/shard0" in text
        assert main(["stats", str(out), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["schema"] == 1

    def test_stats_unreachable_endpoint_fails_cleanly(self, capsys):
        rc = main(["stats", "http://127.0.0.1:1/stats.json",
                   "--timeout", "0.2"])
        assert rc == 1
        assert "stats-unreachable" in capsys.readouterr().err

    def test_profile_metrics_out(self, tmp_path, capsys):
        out = tmp_path / "prof.json"
        rc = main(["profile", "P4", "--packets", "200",
                   "--metrics-out", str(out), "--json"])
        assert rc == 0
        snap = json.loads(out.read_text())
        assert snap["shards"][0]["final"] is True
        assert snap["ledger"]["in"] == 200

    def test_profile_trace_out(self, tmp_path, capsys):
        path = tmp_path / "prof.jsonl"
        rc = main(["profile", "P4", "--packets", "30",
                   "--trace-out", str(path), "--json"])
        assert rc == 0
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 30
        assert lines[0]["schema"] == 1
