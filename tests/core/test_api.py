"""Tests of the public API: the Fig. 4 two-stage workflow."""

import pytest

from repro import (
    CompilerOptions,
    Packet,
    ResourceError,
    Up4Compiler,
    build_dataplane,
    compile_module,
    describe_architecture,
    load_ir,
    save_ir,
)
from repro.lib.loader import load_module_source

MAIN = load_module_source("eth")
L3 = load_module_source("l3_v4v6")
IPV4 = load_module_source("ipv4")
IPV6 = load_module_source("ipv6")


def modules():
    return (
        compile_module(MAIN, "eth.up4"),
        [
            compile_module(L3, "l3.up4"),
            compile_module(IPV4, "ipv4.up4"),
            compile_module(IPV6, "ipv6.up4"),
        ],
    )


class TestStage1:
    def test_compile_module(self):
        module = compile_module(IPV4, "ipv4.up4")
        assert "IPv4" in module.programs

    def test_ir_roundtrip(self):
        module = compile_module(IPV4, "ipv4.up4")
        restored = load_ir(save_ir(module))
        assert set(restored.programs) == {"IPv4"}


class TestStage2:
    def test_build_v1model_dataplane(self):
        main, libs = modules()
        dp = build_dataplane(main, libs, target="v1model")
        assert dp.composed.mode == "micro"
        assert "control Ingress()" in dp.target_output.source_text

    def test_build_tna_dataplane(self):
        main, libs = modules()
        dp = build_dataplane(main, libs, target="tna")
        assert dp.target_output.num_stages >= 5

    def test_dataplane_processes_packets(self):
        from repro.net.build import PacketBuilder
        from repro.net.ethernet import mac
        from repro.net.ipv4 import ip4

        main, libs = modules()
        dp = build_dataplane(main, libs)
        dp.api.add_entry("ipv4_lpm_tbl", [(ip4("10.0.0.0"), 8)], "process", [7])
        dp.api.add_entry(
            "forward_tbl",
            [7],
            "forward",
            [mac("02:00:00:00:00:aa"), mac("02:00:00:00:00:bb"), 3],
        )
        pkt = (
            PacketBuilder()
            .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x0800)
            .ipv4("1.1.1.1", "10.9.9.9", 6)
            .build()
        )
        outs = dp.inject(pkt, in_port=1)
        assert [o.port for o in outs] == [3]

    def test_inject_accepts_bytes(self):
        main, libs = modules()
        dp = build_dataplane(main, libs)
        assert dp.inject(b"\x00" * 64, in_port=0) == []  # unparseable -> drop


class TestDriver:
    def test_bad_target_rejected(self):
        from repro.errors import CompileError

        with pytest.raises(CompileError):
            CompilerOptions(target="fpga")

    def test_monolithic_option(self):
        from repro.lib.loader import load_module_source

        compiler = Up4Compiler(CompilerOptions(monolithic=True, target="tna"))
        module = compiler.frontend(
            load_module_source("p4", kind="monolithic"), "p4.p4"
        )
        result = compiler.compile_modules(module)
        assert result.composed.mode == "monolithic"
        assert result.target_output.num_stages <= 4

    def test_tiny_descriptor_fails(self):
        from repro.backend.tna.descriptor import TofinoDescriptor

        main, libs = modules()
        options = CompilerOptions(
            target="tna", descriptor=TofinoDescriptor().scaled(0.02)
        )
        with pytest.raises(ResourceError):
            Up4Compiler(options).compile_modules(main, libs)

    def test_region_reported(self):
        main, libs = modules()
        result = Up4Compiler().compile_modules(main, libs)
        assert result.region.extract_length == 54  # eth + max(ipv4, ipv6)
        assert result.region.byte_stack_size == 54


class TestArchitecture:
    def test_description_lists_interfaces(self):
        text = describe_architecture()
        assert "Unicast" in text
        assert "mc_engine" in text
        assert "IN_TIMESTAMP" in text

    def test_architecture_object(self):
        from repro import ARCHITECTURE

        assert set(ARCHITECTURE.interfaces) == {
            "Unicast",
            "Multicast",
            "Orchestration",
        }
        assert "pkt" in ARCHITECTURE.externs
