"""Unit tests for control-path enumeration."""

from repro.frontend import astnodes as ast
from repro.ir.cfg import enumerate_control_paths

from tests.midend.conftest import check


def control_of(src, prog="T"):
    mod = check(src)
    return mod.programs[prog].control


BASE = """
struct hdr_t { eth_h eth; ipv4_h ipv4; mpls_h mpls; }
program T : implements Unicast<> {
  parser P(extractor ex, pkt p, out hdr_t h) {
    state start { ex.extract(p, h.eth); transition accept; }
  }
  control C(pkt p, inout hdr_t h, im_t im) {
    %s
    apply { %s }
  }
  control D(emitter em, pkt p, in hdr_t h) { apply { em.emit(p, h.eth); } }
}
"""


class TestStructuralPaths:
    def test_straight_line_is_one_path(self):
        c = control_of(BASE % ("", "h.eth.srcMac = 1; h.eth.dstMac = 2;"))
        paths = enumerate_control_paths(c)
        assert len(paths) == 1
        assert len(paths[0]) == 2

    def test_if_else_two_paths(self):
        c = control_of(
            BASE % ("", "if (h.eth.etherType == 1) { h.eth.srcMac = 1; } else { h.eth.srcMac = 2; }")
        )
        assert len(enumerate_control_paths(c)) == 2

    def test_if_without_else_two_paths(self):
        c = control_of(BASE % ("", "if (h.eth.etherType == 1) { h.eth.srcMac = 1; }"))
        paths = enumerate_control_paths(c)
        assert len(paths) == 2
        assert min(len(p) for p in paths) == 0

    def test_switch_paths(self):
        c = control_of(
            BASE
            % (
                "",
                "switch (h.eth.etherType) { 1 : { h.eth.srcMac = 1; } 2 : { h.eth.srcMac = 2; } }",
            )
        )
        # Two arms plus the implicit no-match path.
        assert len(enumerate_control_paths(c)) == 3

    def test_switch_with_default_no_extra_path(self):
        c = control_of(
            BASE
            % (
                "",
                "switch (h.eth.etherType) { 1 : { h.eth.srcMac = 1; } default : { h.eth.srcMac = 2; } }",
            )
        )
        assert len(enumerate_control_paths(c)) == 2

    def test_table_actions_branch(self):
        c = control_of(
            BASE
            % (
                """
                action a1() { h.mpls.setInvalid(); }
                action a2() { h.ipv4.setValid(); }
                table t { key = { h.eth.etherType : exact; } actions = { a1; a2; } }
                """,
                "t.apply();",
            )
        )
        paths = enumerate_control_paths(c)
        assert len(paths) == 2
        ops = sorted(p.header_ops()[0][0] for p in paths)
        assert ops == ["setInvalid", "setValid"]

    def test_sequential_branching_multiplies(self):
        c = control_of(
            BASE
            % (
                "",
                """
                if (h.eth.etherType == 1) { h.eth.srcMac = 1; }
                if (h.eth.dstMac == 2) { h.eth.srcMac = 2; }
                """,
            )
        )
        assert len(enumerate_control_paths(c)) == 4

    def test_direct_action_call_expanded(self):
        c = control_of(
            BASE % ("action pop() { h.mpls.setInvalid(); }", "pop();")
        )
        paths = enumerate_control_paths(c)
        assert len(paths) == 1
        assert paths[0].header_ops()[0][0] == "setInvalid"


class TestPathQueries:
    def test_module_applies_in_order(self):
        src = (
            "M1(pkt p, im_t im);\nM2(pkt p, im_t im);\n"
            + BASE % ("M1() m1;\nM2() m2;", "m1.apply(p, im); m2.apply(p, im);")
        )
        c = control_of(src)
        paths = enumerate_control_paths(c)
        assert len(paths) == 1
        applies = paths[0].module_applies()
        assert len(applies) == 2
        assert applies[0].resolved[1].target == "M1"
        assert applies[1].resolved[1].target == "M2"

    def test_header_ops_capture_type(self):
        c = control_of(BASE % ("", "h.ipv4.setValid();"))
        (op, htype, lvalue) = enumerate_control_paths(c)[0].header_ops()[0]
        assert op == "setValid"
        assert isinstance(htype, ast.HeaderType)
        assert htype.byte_width == 20
