"""Unit tests for header-stack lowering (Appendix C)."""

import pytest

from repro.errors import AnalysisError
from repro.frontend import astnodes as ast
from repro.frontend.typecheck import check_program
from repro.ir.parse_graph import build_parse_graph
from repro.midend.hdr_stack import has_header_stacks, lower_header_stacks

SRC = """
header eth_h  { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
header mpls_h { bit<20> label; bit<3> tc; bit<1> bos; bit<8> ttl; }
struct hdr_t { eth_h eth; mpls_h mpls[3]; }

program Stacked : implements Unicast<> {
  parser P(extractor ex, pkt p, out hdr_t h) {
    state start {
      ex.extract(p, h.eth);
      transition select(h.eth.etherType) {
        0x8847 : parse_mpls;
        default : accept;
      }
    }
    state parse_mpls {
      ex.extract(p, h.mpls.next);
      transition select(h.mpls.last.bos) {
        0 : parse_mpls;
        1 : accept;
      }
    }
  }
  control C(pkt p, inout hdr_t h, im_t im) {
    action push_label(bit<20> lbl) {
      h.mpls.push_front(1);
      h.mpls[0].setValid();
      h.mpls[0].label = lbl;
      h.mpls[0].ttl = 64;
    }
    action pop_label() {
      h.mpls.pop_front(1);
    }
    table lbl_tbl {
      key = { h.mpls[0].label : exact; }
      actions = { push_label; pop_label; }
      default_action = pop_label();
    }
    apply { lbl_tbl.apply(); }
  }
  control D(emitter em, pkt p, in hdr_t h) {
    apply {
      em.emit(p, h.eth);
      em.emit(p, h.mpls[0]);
      em.emit(p, h.mpls[1]);
      em.emit(p, h.mpls[2]);
    }
  }
}
Stacked(P, C, D) main;
"""


@pytest.fixture(scope="module")
def lowered():
    return lower_header_stacks(check_program(SRC, "stacked"))


class TestStructFlattening:
    def test_detection(self):
        module = check_program(SRC, "stacked")
        assert has_header_stacks(module.source)

    def test_stack_replaced_by_elements(self, lowered):
        hdr_t = lowered.types["hdr_t"]
        names = [n for n, _ in hdr_t.fields]
        assert names == ["eth", "mpls_0", "mpls_1", "mpls_2"]

    def test_elements_are_headers(self, lowered):
        hdr_t = lowered.types["hdr_t"]
        assert isinstance(hdr_t.field_type("mpls_1"), ast.HeaderType)

    def test_no_stack_module_unchanged(self):
        plain = check_program(
            "header e_h { bit<8> x; } struct s_t { e_h e; }", "plain"
        )
        assert lower_header_stacks(plain) is plain


class TestParserUnrolling:
    def test_loop_unrolled(self, lowered):
        parser = lowered.programs["Stacked"].parser
        names = [s.name for s in parser.states]
        assert "parse_mpls" in names
        assert "parse_mpls_u1" in names
        assert "parse_mpls_u2" in names

    def test_paths_extract_increasing_labels(self, lowered):
        graph = build_parse_graph(lowered.programs["Stacked"].parser)
        lengths = sorted(p.extract_len for p in graph.paths())
        # eth alone, eth+1, eth+2, eth+3 labels.
        assert lengths == [14, 18, 22, 26]

    def test_overflow_goes_to_reject(self, lowered):
        parser = lowered.programs["Stacked"].parser
        last = parser.state("parse_mpls_u2")
        targets = [t for _, t in last.select_cases]
        assert "reject" in targets


class TestStackOps:
    def test_push_front_expanded(self, lowered):
        control = lowered.programs["Stacked"].control
        push = next(
            d for d in control.locals
            if isinstance(d, ast.ActionDecl) and d.name == "push_label"
        )
        # The push expands into validity-guarded element copies.
        kinds = [type(s).__name__ for s in push.body.stmts]
        assert "IfStmt" in kinds

    def test_key_rewritten(self, lowered):
        control = lowered.programs["Stacked"].control
        table = next(
            d for d in control.locals if isinstance(d, ast.TableDecl)
        )
        key = table.keys[0].expr
        assert isinstance(key, ast.MemberExpr)
        assert key.base.member == "mpls_0"

    def test_out_of_range_index_rejected(self):
        bad = SRC.replace("h.mpls[0].label : exact;", "h.mpls[7].label : exact;")
        with pytest.raises(AnalysisError):
            lower_header_stacks(check_program(bad, "bad"))

    def test_dynamic_index_rejected(self):
        bad = SRC.replace(
            "apply { lbl_tbl.apply(); }",
            "apply { bit<32> i = 1; h.mpls[i].ttl = 1; lbl_tbl.apply(); }",
        )
        # The parser accepts dynamic indexes syntactically; lowering rejects.
        with pytest.raises(AnalysisError):
            lower_header_stacks(check_program(bad, "bad"))
