"""Shared µP4 source snippets for midend tests.

The header set mirrors the paper's running examples (Figs. 9 and 10):
Ethernet (14 B), MPLS (4 B), IPv4 (20 B), IPv6 (40 B), TCP (20 B).
"""

import pytest

from repro.frontend.typecheck import check_program

HEADER_DEFS = """
header eth_h  { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
header mpls_h { bit<20> label; bit<3> tc; bit<1> bos; bit<8> ttl; }
header ipv4_h { bit<4> version; bit<4> ihl; bit<8> diffserv; bit<16> totalLen;
                bit<16> identification; bit<3> flags; bit<13> fragOffset;
                bit<8> ttl; bit<8> protocol; bit<16> hdrChecksum;
                bit<32> srcAddr; bit<32> dstAddr; }
header ipv6_h { bit<4> version; bit<8> trafficClass; bit<20> flowLabel;
                bit<16> payloadLen; bit<8> nextHdr; bit<8> hopLimit;
                bit<128> srcAddr; bit<128> dstAddr; }
header tcp_h  { bit<16> srcPort; bit<16> dstPort; bit<32> seqNo; bit<32> ackNo;
                bit<4> dataOffset; bit<4> reserved; bit<8> flags;
                bit<16> window; bit<16> checksum; bit<16> urgentPtr; }
"""


def check(src, name="<test>"):
    return check_program(HEADER_DEFS + src, name)


@pytest.fixture
def headers():
    return HEADER_DEFS
