"""Unit tests for composition by inlining (§5.3)."""

import pytest

from repro.errors import AnalysisError
from repro.frontend import astnodes as ast
from repro.ir.printer import expr_text
from repro.ir.visitor import walk
from repro.midend.inline import compose, compose_monolithic
from repro.midend.linker import link_modules

from tests.midend.conftest import check

LEAF = """
struct leaf_t { ipv4_h ipv4; }
program Leaf : implements Unicast<> {
  parser P(extractor ex, pkt p, out leaf_t h) {
    state start { ex.extract(p, h.ipv4); transition accept; }
  }
  control C(pkt p, inout leaf_t h, im_t im, out bit<16> nh, in bit<8> seed) {
    bit<16> scratch;
    apply {
      scratch = (bit<16>) seed;
      nh = scratch + (bit<16>) h.ipv4.ttl;
    }
  }
  control D(emitter em, pkt p, in leaf_t h) { apply { em.emit(p, h.ipv4); } }
}
"""

TOP = """
struct top_t { eth_h eth; }
Leaf(pkt p, im_t im, out bit<16> nh, in bit<8> seed);

program Top : implements Unicast<> {
  parser P(extractor ex, pkt p, out top_t h) {
    state start { ex.extract(p, h.eth); transition accept; }
  }
  control C(pkt p, inout top_t h, im_t im) {
    bit<16> nh;
    Leaf() leaf_i;
    apply {
      nh = 0;
      leaf_i.apply(p, im, nh, 8w7);
      h.eth.etherType = nh;
    }
  }
  control D(emitter em, pkt p, in top_t h) { apply { em.emit(p, h.eth); } }
}
Top(P, C, D) main;
"""


@pytest.fixture(scope="module")
def composed():
    return compose(link_modules(check(TOP, "top"), [check(LEAF, "leaf")]))


class TestNamespacing:
    def test_instance_prefixed_names(self, composed):
        assert "main_hdr" in composed.variables
        assert "main_leaf_i_hdr" in composed.variables
        assert "main_leaf_i_scratch" in composed.variables
        assert "main_nh" in composed.variables

    def test_tables_per_module(self, composed):
        assert "main_parser_tbl" in composed.tables
        assert "main_leaf_i_parser_tbl" in composed.tables
        assert "main_leaf_i_deparser_tbl" in composed.tables

    def test_path_registers(self, composed):
        assert "main_path" in composed.variables
        assert "main_leaf_i_path" in composed.variables

    def test_no_module_calls_remain(self, composed):
        for stmt in composed.statements:
            for node in walk(stmt):
                if isinstance(node, ast.MethodCallExpr):
                    resolved = getattr(node, "resolved", None)
                    assert resolved is None or resolved[0] != "module"


class TestParameterBinding:
    def test_out_param_bound_to_caller_var(self, composed):
        """The leaf writes `nh`; after inlining, the write targets the
        caller's variable."""
        writes = []
        for stmt in composed.statements:
            for node in walk(stmt):
                if isinstance(node, ast.AssignStmt):
                    writes.append(expr_text(node.lhs))
        assert "main_nh" in writes

    def test_in_param_literal_substituted(self, composed):
        texts = []
        for stmt in composed.statements:
            for node in walk(stmt):
                if isinstance(node, ast.AssignStmt):
                    texts.append(expr_text(node.rhs))
        assert any("0x7" in t for t in texts)

    def test_callee_offset_after_caller_parser(self, composed):
        """Leaf parses at byte-stack offset 14 (after Ethernet)."""
        leaf_mat = composed.parser_mats["main_leaf_i"]
        assert leaf_mat.base_offset == 14
        extract_action = next(
            a for name, a in leaf_mat.actions.items() if name.startswith("cp_")
        )
        text = " ".join(
            expr_text(s.rhs)
            for s in extract_action.body.stmts
            if isinstance(s, ast.AssignStmt) and "ipv4" in expr_text(s.lhs)
        )
        assert "upa_bs.b14" in text


class TestConstraints:
    def test_variable_offset_callee_rejected(self):
        top = """
        struct vt_t { eth_h eth; mpls_h mpls; }
        Leaf(pkt p, im_t im, out bit<16> nh, in bit<8> seed);
        program VarTop : implements Unicast<> {
          parser P(extractor ex, pkt p, out vt_t h) {
            state start {
              ex.extract(p, h.eth);
              transition select(h.eth.etherType) {
                0x8847 : with_mpls;
                default : accept;
              }
            }
            state with_mpls { ex.extract(p, h.mpls); transition accept; }
          }
          control C(pkt p, inout vt_t h, im_t im) {
            bit<16> nh;
            Leaf() leaf_i;
            apply { nh = 0; leaf_i.apply(p, im, nh, 8w1); }
          }
          control D(emitter em, pkt p, in vt_t h) { apply { em.emit(p, h.eth); } }
        }
        VarTop(P, C, D) main;
        """
        linked = link_modules(check(top, "vt"), [check(LEAF, "leaf")])
        with pytest.raises(AnalysisError) as exc:
            compose(linked)
        assert "static" in str(exc.value)

    def test_monolithic_rejects_instances(self):
        linked = link_modules(check(TOP, "top"), [check(LEAF, "leaf")])
        from repro.errors import LinkError

        with pytest.raises(LinkError):
            compose_monolithic(linked)


class TestRegions:
    def test_composed_region(self, composed):
        assert composed.region.extract_length == 34  # eth + ipv4
        assert composed.byte_stack_size == 34

    def test_mode(self, composed):
        assert composed.mode == "micro"
