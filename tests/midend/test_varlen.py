"""Unit tests for variable-length header lowering (Appendix C)."""

import pytest

from repro.errors import AnalysisError
from repro.frontend.typecheck import check_program
from repro.ir.parse_graph import build_parse_graph
from repro.midend.varlen import has_varlen_headers, lower_varlen_headers

SRC = """
header eth_h { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
header opt_h { bit<8> kind; bit<8> len; varbit<32> data; }
struct hdr_t { eth_h eth; opt_h opt; }

program VarLen : implements Unicast<> {
  parser P(extractor ex, pkt p, out hdr_t h) {
    state start {
      ex.extract(p, h.eth);
      transition select(h.eth.etherType) {
        0x1234 : parse_opt;
        default : accept;
      }
    }
    state parse_opt {
      ex.extract(p, h.opt, (bit<32>) 16);
      transition accept;
    }
  }
  control C(pkt p, inout hdr_t h, im_t im) {
    apply { im.set_out_port(8w1); }
  }
  control D(emitter em, pkt p, in hdr_t h) {
    apply {
      em.emit(p, h.eth);
      em.emit(p, h.opt);
    }
  }
}
VarLen(P, C, D) main;
"""


@pytest.fixture(scope="module")
def lowered():
    return lower_varlen_headers(check_program(SRC, "varlen"))


class TestTypeSplitting:
    def test_detection(self):
        module = check_program(SRC, "varlen")
        assert has_varlen_headers(module.source)

    def test_fixed_part_kept(self, lowered):
        opt = lowered.types["opt_h"]
        assert [n for n, _ in opt.fields] == ["kind", "len"]

    def test_variants_synthesized(self, lowered):
        assert lowered.types["opt_h_var1"].fixed_bit_width == 8
        assert lowered.types["opt_h_var4"].fixed_bit_width == 32

    def test_struct_gains_variant_fields(self, lowered):
        hdr_t = lowered.types["hdr_t"]
        names = [n for n, _ in hdr_t.fields]
        assert "opt" in names
        assert "opt_var1" in names and "opt_var4" in names

    def test_no_varbit_module_unchanged(self):
        plain = check_program("header e_h { bit<8> x; }", "plain")
        assert lower_varlen_headers(plain) is plain

    def test_varbit_not_last_rejected(self):
        bad = "header b_h { varbit<16> v; bit<8> after; }"
        with pytest.raises(AnalysisError):
            lower_varlen_headers(check_program(bad, "bad"))


class TestParserRewriting:
    def test_variant_states_created(self, lowered):
        parser = lowered.programs["VarLen"].parser
        names = {s.name for s in parser.states}
        assert "parse_opt_var1" in names
        assert "parse_opt_var4" in names
        assert "parse_opt_varlen_done" in names

    def test_select_enumerates_sizes(self, lowered):
        parser = lowered.programs["VarLen"].parser
        opt = parser.state("parse_opt")
        labels = []
        for keysets, _ in opt.select_cases:
            labels.append(keysets[0].value)
        assert labels == [0, 8, 16, 24, 32]

    def test_parse_paths_cover_all_sizes(self, lowered):
        graph = build_parse_graph(lowered.programs["VarLen"].parser)
        lengths = sorted(p.extract_len for p in graph.paths())
        # eth only, and eth + kind/len (2B) + 0..4 bytes of options.
        assert lengths == [14, 16, 17, 18, 19, 20]

    def test_emits_expanded(self, lowered):
        deparser = lowered.programs["VarLen"].deparser
        assert len(deparser.apply_body.stmts) == 2 + 4  # eth, opt, 4 variants


class TestEndToEnd:
    def test_lowered_module_composes(self, lowered):
        from repro.midend.inline import compose
        from repro.midend.linker import link_modules

        composed = compose(link_modules(lowered, []))
        assert composed.region.extract_length == 20
