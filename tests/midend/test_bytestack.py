"""Unit + property tests for byte-stack code generation.

The generated assignments are executed with the real interpreter, so
these tests check the *semantics* of the synthesized code: extracting a
header from the stack and writing it back must round-trip; shifts must
move regions like a dataplane removing/inserting headers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.frontend import astnodes as ast
from repro.ir.printer import expr_text
from repro.midend.bytestack import BS_LEN_VAR, ByteStack
from repro.targets.interpreter import Env, HeaderValue, Interpreter


def make_header(widths):
    fields = [(f"f{i}", ast.BitType(width=w)) for i, w in enumerate(widths)]
    return ast.HeaderType(name="h_t", fields=fields)


IPV4ISH = make_header([4, 4, 8, 16, 16, 3, 13, 8, 8, 16, 32, 32])  # 20 B


def fresh_env(bs: ByteStack, data: bytes):
    env = Env()
    stack = HeaderValue(bs.header_type())
    for i, byte in enumerate(data[: bs.size]):
        stack.fields[f"b{i}"] = byte
    env.define("upa_bs", stack)
    env.define(BS_LEN_VAR, min(len(data), bs.size))
    return env, stack


def run(stmts, env):
    Interpreter({}, {}).exec_block(stmts, env)


def hdr_lvalue(name="hdr"):
    expr = ast.PathExpr(name=name)
    return expr


class TestReadBits:
    def test_single_byte(self):
        bs = ByteStack(4)
        expr = bs.read_bits(1, 0, 8)
        assert expr_text(expr) == "upa_bs.b1"

    def test_concat_two_bytes(self):
        bs = ByteStack(4)
        expr = bs.read_bits(0, 0, 16)
        assert expr_text(expr) == "(upa_bs.b0 ++ upa_bs.b1)"

    def test_sub_byte_slice(self):
        bs = ByteStack(4)
        expr = bs.read_bits(0, 0, 4)
        assert expr_text(expr) == "upa_bs.b0[7:4]"
        expr = bs.read_bits(0, 4, 4)
        assert expr_text(expr) == "upa_bs.b0[3:0]"

    def test_straddling_field(self):
        bs = ByteStack(4)
        # 13 bits starting 3 bits into byte 1 (like fragOffset).
        expr = bs.read_bits(1, 3, 13)
        assert expr_text(expr) == "(upa_bs.b1 ++ upa_bs.b2)[12:0]"

    def test_out_of_range_slot(self):
        bs = ByteStack(2)
        with pytest.raises(AnalysisError):
            bs.slot(2)


class TestRoundTrip:
    def exec_roundtrip(self, header, data):
        bs = ByteStack(header.byte_width)
        env, stack = fresh_env(bs, data)
        hdr = HeaderValue(header)
        env.define("hdr", hdr)
        lv = hdr_lvalue()
        lv.type = header
        run(bs.extract_assigns(0, header, lv), env)
        # Scramble the stack, write back, compare.
        for i in range(bs.size):
            stack.fields[f"b{i}"] = 0xEE
        run(bs.writeback_assigns(0, header, lv), env)
        return bytes(stack.fields[f"b{i}"] for i in range(bs.size))

    def test_ipv4ish_roundtrip(self):
        data = bytes(range(1, 21))
        assert self.exec_roundtrip(IPV4ISH, data) == data

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=20, max_size=20))
    def test_roundtrip_property(self, data):
        assert self.exec_roundtrip(IPV4ISH, data) == data

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.sampled_from([1, 3, 4, 8, 13, 16, 20, 32, 48]),
            min_size=1,
            max_size=6,
        ).filter(lambda ws: sum(ws) % 8 == 0),
        st.data(),
    )
    def test_roundtrip_random_layouts(self, widths, data):
        header = make_header(widths)
        raw = data.draw(st.binary(
            min_size=header.byte_width, max_size=header.byte_width
        ))
        assert self.exec_roundtrip(header, raw) == raw


class TestShift:
    def exec_shift(self, size, data, region_start, delta):
        bs = ByteStack(size)
        env, stack = fresh_env(bs, data)
        run(bs.shift_assigns(region_start, delta), env)
        return bytes(stack.fields[f"b{i}"] for i in range(size))

    def test_shrink_moves_tail_up(self):
        # Remove 2 bytes at offset 2: [aa bb cc dd ee ff] -> tail up.
        out = self.exec_shift(6, bytes([1, 2, 3, 4, 5, 6]), 4, -2)
        assert out[:2] == bytes([1, 2])
        assert out[2:4] == bytes([5, 6])

    def test_grow_moves_tail_down(self):
        out = self.exec_shift(6, bytes([1, 2, 3, 4, 5, 6]), 2, 2)
        assert out[:2] == bytes([1, 2])
        assert out[4:6] == bytes([3, 4])

    def test_zero_delta_no_ops(self):
        bs = ByteStack(4)
        assert bs.shift_assigns(0, 0) == []

    @settings(max_examples=30, deadline=None)
    @given(
        st.binary(min_size=12, max_size=12),
        st.integers(0, 8),
        st.integers(1, 3),
    )
    def test_grow_then_shrink_roundtrips_prefix(self, data, start, delta):
        """Shifting down then up restores everything that stayed in
        range (bytes pushed past the end are lost, as in hardware)."""
        grown = self.exec_shift(12, data, start, delta)
        bs = ByteStack(12)
        env, stack = fresh_env(bs, grown)
        run(bs.shift_assigns(start + delta, -delta), env)
        out = bytes(stack.fields[f"b{i}"] for i in range(12))
        survive = 12 - start - delta
        assert out[: start + survive] == data[: start + survive]

    def test_adjust_len(self):
        bs = ByteStack(8)
        env, _ = fresh_env(bs, b"\x00" * 8)
        run([bs.adjust_len_stmt(-3)], env)
        assert env.get(BS_LEN_VAR) == 5
        run([bs.adjust_len_stmt(4)], env)
        assert env.get(BS_LEN_VAR) == 9
