"""Unit tests for the parser→MAT transformation (§5.3, Fig. 10)."""

import pytest

from repro.frontend import astnodes as ast
from repro.ir.printer import expr_text
from repro.midend.bytestack import ByteStack
from repro.midend.parser_to_mat import parser_to_mat

from tests.midend.conftest import check
from tests.midend.test_parse_graph import FIG10_PARSER


@pytest.fixture(scope="module")
def fig10_mat():
    parser = check(FIG10_PARSER).programs["Fig10"].parser
    return parser_to_mat(parser, 0, ByteStack(94), "m")


class TestKeys:
    def test_length_guard_first(self, fig10_mat):
        assert fig10_mat.table.keys[0].match_kind == "range"
        assert expr_text(fig10_mat.table.keys[0].expr) == "upa_bs_len"

    def test_subjects_mapped_to_stack(self, fig10_mat):
        """Fig. 10c: etherType becomes b[12]++b[13], nexthdr b[20],
        protocol b[23]; the meta fields stay symbolic."""
        key_texts = [expr_text(k.expr) for k in fig10_mat.table.keys[1:]]
        assert "(upa_bs.b12 ++ upa_bs.b13)" in key_texts
        assert "upa_bs.b20" in key_texts
        assert "upa_bs.b23" in key_texts
        assert any("m.data1" in k for k in key_texts)
        assert any("m.data2" in k for k in key_texts)

    def test_subject_kinds_ternary(self, fig10_mat):
        assert all(k.match_kind == "ternary" for k in fig10_mat.table.keys[1:])


class TestEntries:
    def test_one_entry_per_path(self, fig10_mat):
        assert len(fig10_mat.table.const_entries) == len(fig10_mat.paths) == 2

    def test_dont_cares_on_other_paths_keys(self, fig10_mat):
        """Fig. 10c: the v4 entry ignores the v6-only keys and vice
        versa."""
        for entry in fig10_mat.table.const_entries:
            wildcards = [
                ks for ks in entry.keysets[1:] if isinstance(ks, ast.DefaultExpr)
            ]
            assert len(wildcards) == 2  # the other path's subject + meta

    def test_entry_guard_matches_path_length(self, fig10_mat):
        for entry, path in zip(fig10_mat.table.const_entries, fig10_mat.paths):
            guard = entry.keysets[0]
            assert isinstance(guard, ast.RangeExpr)
            assert guard.lo.value == path.extract_len


class TestActions:
    def action_of(self, mat, index):
        return mat.actions[mat.table.const_entries[index].action_name]

    def test_action_sets_path_register(self, fig10_mat):
        action = self.action_of(fig10_mat, 0)
        first = action.body.stmts[0]
        assert isinstance(first, ast.AssignStmt)
        assert expr_text(first.lhs) == "m_path"
        assert first.rhs.value == 1

    def test_action_sets_validity_and_fields(self, fig10_mat):
        action = self.action_of(fig10_mat, 0)
        text = "".join(
            expr_text(s.call) if isinstance(s, ast.MethodCallStmt)
            else expr_text(s.lhs)
            for s in action.body.stmts
        )
        assert "setValid" in text
        assert "h.eth.dstMac" in text

    def test_forwarded_assignments_replayed(self, fig10_mat):
        """The per-path var_y assignment (after forward substitution)
        lands in the action body."""
        found = []
        for entry in fig10_mat.table.const_entries:
            action = fig10_mat.actions[entry.action_name]
            for stmt in action.body.stmts:
                if isinstance(stmt, ast.AssignStmt) and expr_text(stmt.lhs) == "var_y":
                    found.append(expr_text(stmt.rhs))
        assert sorted(found) == ["m.data1", "m.data2"]

    def test_default_action_sets_error(self, fig10_mat):
        err = fig10_mat.actions[fig10_mat.table.default_action]
        targets = [expr_text(s.lhs) for s in err.body.stmts]
        assert "upa_parser_err" in targets


class TestOffsets:
    def test_base_offset_shifts_reads(self):
        parser = check(FIG10_PARSER).programs["Fig10"].parser
        mat = parser_to_mat(parser, 14, ByteStack(108), "m")
        key_texts = [expr_text(k.expr) for k in mat.table.keys[1:]]
        assert "(upa_bs.b26 ++ upa_bs.b27)" in key_texts  # etherType at 14+12

    def test_const_extract_len(self):
        src = """
        struct h1_t { eth_h eth; }
        program OneLen : implements Unicast<> {
          parser P(extractor ex, pkt p, out h1_t h) {
            state start { ex.extract(p, h.eth); transition accept; }
          }
          control C(pkt p, inout h1_t h, im_t im) { apply { } }
          control D(emitter em, pkt p, in h1_t h) { apply { em.emit(p, h.eth); } }
        }
        """
        parser = check(src).programs["OneLen"].parser
        mat = parser_to_mat(parser, 0, ByteStack(14), "m")
        assert mat.const_extract_len == 14

    def test_variable_extract_len_is_none(self, fig10_mat):
        assert fig10_mat.const_extract_len is None
