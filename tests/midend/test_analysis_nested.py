"""Operational-region analysis through deep composition chains."""

import pytest

from repro.midend.analysis import Analyzer, analyze, analyze_all
from repro.midend.linker import link_modules

from tests.midend.conftest import check


def leaf(name, extract_header, grow=None, shrink=None):
    """A Unicast module extracting one header, optionally resizing."""
    body = ""
    if grow:
        body += f"h.{grow}.setValid();\n"
    if shrink:
        body += f"h.{shrink}.setInvalid();\n"
    return f"""
    struct {name}_t {{ eth_h eth; mpls_h mpls; ipv4_h ipv4; ipv6_h ipv6; }}
    program {name} : implements Unicast<> {{
      parser P(extractor ex, pkt p, out {name}_t h) {{
        state start {{ ex.extract(p, h.{extract_header}); transition accept; }}
      }}
      control C(pkt p, inout {name}_t h, im_t im) {{
        apply {{ {body} }}
      }}
      control D(emitter em, pkt p, in {name}_t h) {{
        apply {{
          em.emit(p, h.eth);
          em.emit(p, h.mpls);
          em.emit(p, h.ipv4);
          em.emit(p, h.ipv6);
        }}
      }}
    }}
    """


def middle(name, callee):
    return f"""
    struct {name}_t {{ eth_h eth; }}
    {callee}(pkt p, im_t im);
    program {name} : implements Unicast<> {{
      parser P(extractor ex, pkt p, out {name}_t h) {{
        state start {{ ex.extract(p, h.eth); transition accept; }}
      }}
      control C(pkt p, inout {name}_t h, im_t im) {{
        {callee}() inner;
        apply {{ inner.apply(p, im); }}
      }}
      control D(emitter em, pkt p, in {name}_t h) {{
        apply {{ em.emit(p, h.eth); }}
      }}
    }}
    """


def top(callee):
    return f"""
    struct top_t {{ eth_h eth; }}
    {callee}(pkt p, im_t im);
    program Top : implements Unicast<> {{
      parser P(extractor ex, pkt p, out top_t h) {{
        state start {{ ex.extract(p, h.eth); transition accept; }}
      }}
      control C(pkt p, inout top_t h, im_t im) {{
        {callee}() mid;
        apply {{ mid.apply(p, im); }}
      }}
      control D(emitter em, pkt p, in top_t h) {{
        apply {{ em.emit(p, h.eth); }}
      }}
    }}
    Top(P, C, D) main;
    """


class TestThreeLevels:
    def test_extract_lengths_accumulate(self):
        linked = link_modules(
            check(top("Mid"), "t"),
            [
                check(middle("Mid", "Leaf"), "m"),
                check(leaf("Leaf", "ipv6"), "l"),
            ],
        )
        regions = analyze_all(linked)
        assert regions["Leaf"].extract_length == 40
        assert regions["Mid"].extract_length == 14 + 40
        assert regions["Top"].extract_length == 14 + 14 + 40

    def test_growth_propagates_up(self):
        linked = link_modules(
            check(top("Mid"), "t"),
            [
                check(middle("Mid", "Leaf"), "m"),
                check(leaf("Leaf", "ipv4", grow="mpls"), "l"),
            ],
        )
        regions = analyze_all(linked)
        assert regions["Leaf"].max_increase == 4
        assert regions["Mid"].max_increase == 4
        assert regions["Top"].max_increase == 4
        assert regions["Top"].byte_stack_size == 14 + 14 + 20 + 4

    def test_shrink_propagates_up(self):
        linked = link_modules(
            check(top("Mid"), "t"),
            [
                check(middle("Mid", "Leaf"), "m"),
                check(leaf("Leaf", "mpls", shrink="mpls"), "l"),
            ],
        )
        regions = analyze_all(linked)
        assert regions["Leaf"].max_decrease == 4
        assert regions["Top"].max_decrease == 4

    def test_min_packet_accumulates(self):
        linked = link_modules(
            check(top("Mid"), "t"),
            [
                check(middle("Mid", "Leaf"), "m"),
                check(leaf("Leaf", "ipv6"), "l"),
            ],
        )
        assert analyze(linked).min_packet_size == 14 + 14 + 40


class TestMemoization:
    def test_shared_callee_analyzed_once(self):
        """A diamond (Top -> MidA/MidB -> Leaf) hits the analyzer cache."""
        diamond_top = """
        struct dt_t { eth_h eth; }
        MidA(pkt p, im_t im);
        MidB(pkt p, im_t im);
        program Top : implements Unicast<> {
          parser P(extractor ex, pkt p, out dt_t h) {
            state start { ex.extract(p, h.eth); transition accept; }
          }
          control C(pkt p, inout dt_t h, im_t im) {
            MidA() a;
            MidB() b;
            apply {
              if (h.eth.etherType == 1) { a.apply(p, im); }
              else { b.apply(p, im); }
            }
          }
          control D(emitter em, pkt p, in dt_t h) { apply { em.emit(p, h.eth); } }
        }
        Top(P, C, D) main;
        """
        linked = link_modules(
            check(diamond_top, "t"),
            [
                check(middle("MidA", "Leaf"), "ma"),
                check(middle("MidB", "Leaf"), "mb"),
                check(leaf("Leaf", "ipv4"), "l"),
            ],
        )
        analyzer = Analyzer(linked)
        calls = []
        original = analyzer._analyze_unit

        def counting(unit):
            calls.append(unit.name)
            return original(unit)

        analyzer._analyze_unit = counting
        analyzer.analyze()
        assert calls.count("Leaf") == 1

    def test_branch_max_not_sum(self):
        """Exclusive branches take the max extract length, not the sum."""
        linked = link_modules(
            check(
                """
                struct bm_t { eth_h eth; }
                A(pkt p, im_t im);
                B(pkt p, im_t im);
                program Top : implements Unicast<> {
                  parser P(extractor ex, pkt p, out bm_t h) {
                    state start { ex.extract(p, h.eth); transition accept; }
                  }
                  control C(pkt p, inout bm_t h, im_t im) {
                    A() a;
                    B() b;
                    apply {
                      switch (h.eth.etherType) {
                        1 : a.apply(p, im);
                        2 : b.apply(p, im);
                      }
                    }
                  }
                  control D(emitter em, pkt p, in bm_t h) {
                    apply { em.emit(p, h.eth); }
                  }
                }
                Top(P, C, D) main;
                """,
                "t",
            ),
            [check(leaf("A", "ipv6"), "a"), check(leaf("B", "ipv4"), "b")],
        )
        assert analyze(linked).extract_length == 14 + 40  # max, not 14+60
