"""Unit tests for µP4 module linking."""

import pytest

from repro.errors import LinkError
from repro.midend.linker import link_modules

from tests.midend.conftest import check

LIB_IPV4 = """
struct hdr4_t { ipv4_h ipv4; }
program ipv4 : implements Unicast<> {
  parser P(extractor ex, pkt p, out hdr4_t h) {
    state start { ex.extract(p, h.ipv4); transition accept; }
  }
  control C(pkt p, inout hdr4_t h, im_t im, out bit<16> nh) {
    apply { nh = (bit<16>) h.ipv4.dstAddr[15:0]; }
  }
  control D(emitter em, pkt p, in hdr4_t h) { apply { em.emit(p, h.ipv4); } }
}
"""

MAIN = """
struct hdr_t { eth_h eth; }
ipv4(pkt p, im_t im, out bit<16> nh);

program Router : implements Unicast<> {
  parser P(extractor ex, pkt p, out hdr_t h) {
    state start { ex.extract(p, h.eth); transition accept; }
  }
  control C(pkt p, inout hdr_t h, im_t im) {
    ipv4() v4;
    apply { bit<16> nh; v4.apply(p, im, nh); }
  }
  control D(emitter em, pkt p, in hdr_t h) { apply { em.emit(p, h.eth); } }
}
Router(P, C, D) main;
"""


class TestLinking:
    def test_link_resolves_instance(self):
        linked = link_modules(check(MAIN, "main"), [check(LIB_IPV4, "ipv4")])
        unit = linked.callee_of(linked.main.program, "v4")
        assert unit.name == "ipv4"
        assert unit.module.name == "ipv4"

    def test_units_topological(self):
        linked = link_modules(check(MAIN, "main"), [check(LIB_IPV4, "ipv4")])
        names = [u.name for u in linked.units()]
        assert names == ["ipv4", "Router"]

    def test_missing_provider_rejected(self):
        with pytest.raises(LinkError):
            link_modules(check(MAIN, "main"), [])

    def test_duplicate_provider_rejected(self):
        with pytest.raises(LinkError):
            link_modules(
                check(MAIN, "main"),
                [check(LIB_IPV4, "a"), check(LIB_IPV4, "b")],
            )

    def test_unknown_instance_lookup(self):
        linked = link_modules(check(MAIN, "main"), [check(LIB_IPV4, "ipv4")])
        with pytest.raises(LinkError):
            linked.callee_of(linked.main.program, "ghost")


class TestSignatureChecking:
    def test_direction_mismatch_rejected(self):
        bad_main = MAIN.replace("out bit<16> nh);", "in bit<16> nh);").replace(
            "v4.apply(p, im, nh);", "v4.apply(p, im, nh);"
        )
        with pytest.raises(LinkError):
            link_modules(check(bad_main, "main"), [check(LIB_IPV4, "ipv4")])

    def test_width_mismatch_rejected(self):
        bad_main = MAIN.replace(
            "ipv4(pkt p, im_t im, out bit<16> nh);",
            "ipv4(pkt p, im_t im, out bit<32> nh);",
        ).replace("bit<16> nh; v4.apply", "bit<32> nh; v4.apply")
        with pytest.raises(LinkError):
            link_modules(check(bad_main, "main"), [check(LIB_IPV4, "ipv4")])

    def test_arity_mismatch_rejected(self):
        bad_lib = LIB_IPV4.replace(
            "im_t im, out bit<16> nh)", "im_t im, out bit<16> nh, out bit<8> extra)"
        ).replace(
            "apply { nh = (bit<16>) h.ipv4.dstAddr[15:0]; }",
            "apply { nh = (bit<16>) h.ipv4.dstAddr[15:0]; extra = 0; }",
        )
        with pytest.raises(LinkError):
            link_modules(check(MAIN, "main"), [check(bad_lib, "ipv4")])


class TestRecursionCheck:
    def test_self_recursion_rejected(self):
        src = """
        struct h_t { eth_h eth; }
        Rec(pkt p, im_t im);
        program Rec : implements Unicast<> {
          parser P(extractor ex, pkt p, out h_t h) {
            state start { transition accept; }
          }
          control C(pkt p, inout h_t h, im_t im) {
            Rec() inner;
            apply { inner.apply(p, im); }
          }
          control D(emitter em, pkt p, in h_t h) { apply { } }
        }
        Rec(P, C, D) main;
        """
        with pytest.raises(LinkError) as exc:
            link_modules(check(src, "rec"), [])
        assert "recursive" in str(exc.value)

    def test_mutual_recursion_rejected(self):
        a = """
        struct h_t { eth_h eth; }
        B(pkt p, im_t im);
        program A : implements Unicast<> {
          parser P(extractor ex, pkt p, out h_t h) { state start { transition accept; } }
          control C(pkt p, inout h_t h, im_t im) { B() b; apply { b.apply(p, im); } }
          control D(emitter em, pkt p, in h_t h) { apply { } }
        }
        A(P, C, D) main;
        """
        b = """
        struct h_t { eth_h eth; }
        A(pkt p, im_t im);
        program B : implements Unicast<> {
          parser P(extractor ex, pkt p, out h_t h) { state start { transition accept; } }
          control C(pkt p, inout h_t h, im_t im) { A() a; apply { a.apply(p, im); } }
          control D(emitter em, pkt p, in h_t h) { apply { } }
        }
        """
        with pytest.raises(LinkError) as exc:
            link_modules(check(a, "a"), [check(b, "b")])
        assert "recursive" in str(exc.value)

    def test_diamond_composition_allowed(self):
        """A → B, A → C, B → D, C → D is a DAG, not recursion."""
        d = """
        struct h_t { eth_h eth; }
        program D4 : implements Unicast<> {
          parser P(extractor ex, pkt p, out h_t h) { state start { transition accept; } }
          control C(pkt p, inout h_t h, im_t im) { apply { } }
          control D(emitter em, pkt p, in h_t h) { apply { } }
        }
        """
        mid_template = """
        struct h_t { eth_h eth; }
        D4(pkt p, im_t im);
        program %s : implements Unicast<> {
          parser P(extractor ex, pkt p, out h_t h) { state start { transition accept; } }
          control C(pkt p, inout h_t h, im_t im) { D4() d; apply { d.apply(p, im); } }
          control D(emitter em, pkt p, in h_t h) { apply { } }
        }
        """
        top = """
        struct h_t { eth_h eth; }
        B4(pkt p, im_t im);
        C4(pkt p, im_t im);
        program A4 : implements Unicast<> {
          parser P(extractor ex, pkt p, out h_t h) { state start { transition accept; } }
          control C(pkt p, inout h_t h, im_t im) {
            B4() b; C4() c;
            apply { b.apply(p, im); c.apply(p, im); }
          }
          control D(emitter em, pkt p, in h_t h) { apply { } }
        }
        A4(P, C, D) main;
        """
        linked = link_modules(
            check(top, "top"),
            [check(mid_template % "B4", "b"), check(mid_template % "C4", "c"), check(d, "d")],
        )
        assert [u.name for u in linked.units()] == ["D4", "B4", "C4", "A4"]
