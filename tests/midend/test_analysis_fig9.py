"""Operational-region analysis tests, including the paper's Fig. 9 numbers.

Fig. 9: a caller invokes callee1 then callee2 on one control path.
callee1 parses eth(14)+mpls(4)+ipv6(40), removes mpls (δ=4) and adds
ipv4 (∆=20).  callee2 may parse eth+ipv6+ipv4 = 74 bytes.  The paper
computes El(caller) = 78 (= δ(callee1) + El(callee2)) and byte-stack
size Bs = 98 (= El + ∆ with ∆(caller) = 20 from callee1).
"""

import pytest

from repro.midend.analysis import analyze, analyze_all
from repro.midend.linker import link_modules

from tests.midend.conftest import check

CALLEE1 = """
struct h1_t { eth_h eth; mpls_h mpls; ipv6_h ipv6; ipv4_h ipv4; }
program callee1 : implements Unicast<> {
  parser P(extractor ex, pkt p, out h1_t h) {
    state start {
      ex.extract(p, h.eth);
      transition select(h.eth.etherType) { 0x8847 : parse_mpls; }
    }
    state parse_mpls {
      ex.extract(p, h.mpls);
      transition parse_ipv6;
    }
    state parse_ipv6 { ex.extract(p, h.ipv6); transition accept; }
  }
  control C(pkt p, inout h1_t h, im_t im) {
    apply {
      h.mpls.setInvalid();
      h.ipv4.setValid();
    }
  }
  control D(emitter em, pkt p, in h1_t h) {
    apply {
      em.emit(p, h.eth);
      em.emit(p, h.mpls);
      em.emit(p, h.ipv4);
      em.emit(p, h.ipv6);
    }
  }
}
"""

CALLEE2 = """
struct h2_t { eth_h eth; ipv6_h ipv6; ipv4_h ipv4; }
program callee2 : implements Unicast<> {
  parser P(extractor ex, pkt p, out h2_t h) {
    state start {
      ex.extract(p, h.eth);
      transition select(h.eth.etherType) {
        0x86DD : parse_ipv6;
        0x0800 : parse_ipv4;
      }
    }
    state parse_ipv6 {
      ex.extract(p, h.ipv6);
      transition select(h.ipv6.nextHdr) { 0x4 : parse_ipv4; default : accept; }
    }
    state parse_ipv4 { ex.extract(p, h.ipv4); transition accept; }
  }
  control C(pkt p, inout h2_t h, im_t im) { apply { } }
  control D(emitter em, pkt p, in h2_t h) {
    apply { em.emit(p, h.eth); em.emit(p, h.ipv6); em.emit(p, h.ipv4); }
  }
}
"""

CALLER = """
struct hc_t { eth_h dummy; }
callee1(pkt p, im_t im);
callee2(pkt p, im_t im);

program Caller : implements Unicast<> {
  parser P(extractor ex, pkt p, out hc_t h) {
    state start { transition accept; }
  }
  control C(pkt p, inout hc_t h, im_t im) {
    callee1() c1;
    callee2() c2;
    apply { c1.apply(p, im); c2.apply(p, im); }
  }
  control D(emitter em, pkt p, in hc_t h) { apply { } }
}
Caller(P, C, D) main;
"""


@pytest.fixture(scope="module")
def fig9():
    linked = link_modules(
        check(CALLER, "caller"), [check(CALLEE1, "c1"), check(CALLEE2, "c2")]
    )
    return linked, analyze_all(linked)


class TestFig9:
    def test_callee1_region(self, fig9):
        _, regions = fig9
        r = regions["callee1"]
        assert r.parser_extract_length == 58  # eth+mpls+ipv6
        assert r.extract_length == 58
        assert r.max_increase == 20  # ipv4.setValid
        assert r.max_decrease == 4  # mpls.setInvalid

    def test_callee2_region(self, fig9):
        _, regions = fig9
        r = regions["callee2"]
        assert r.extract_length == 74  # eth+ipv6+ipv4
        assert r.max_increase == 0
        assert r.max_decrease == 0

    def test_caller_extract_length_eq3(self, fig9):
        """El(caller) = max(El(c1), δ(c1) + El(c2)) = max(58, 4+74) = 78."""
        _, regions = fig9
        assert regions["Caller"].extract_length == 78

    def test_caller_byte_stack_eq4(self, fig9):
        """Bs = El + ∆ = 78 + 20 = 98 (the paper's headline number)."""
        _, regions = fig9
        r = regions["Caller"]
        assert r.max_increase == 20
        assert r.byte_stack_size == 98

    def test_analyze_returns_main(self, fig9):
        linked, regions = fig9
        assert analyze(linked) == regions["Caller"]


class TestLocalRegions:
    def make(self, control_body, deparser_body="em.emit(p, h.eth);"):
        src = """
        struct hdr_t { eth_h eth; ipv4_h ipv4; mpls_h mpls; }
        program T : implements Unicast<> {
          parser P(extractor ex, pkt p, out hdr_t h) {
            state start { ex.extract(p, h.eth); transition accept; }
          }
          control C(pkt p, inout hdr_t h, im_t im) { apply { %s } }
          control D(emitter em, pkt p, in hdr_t h) { apply { %s } }
        }
        T(P, C, D) main;
        """ % (control_body, deparser_body)
        linked = link_modules(check(src, "t"), [])
        return analyze(linked)

    def test_plain_forwarding(self):
        r = self.make("h.eth.srcMac = 1;")
        assert r.extract_length == 14
        assert r.byte_stack_size == 14
        assert r.min_packet_size == 14

    def test_push_header_increases(self):
        r = self.make("h.mpls.setValid();")
        assert r.max_increase == 4
        assert r.byte_stack_size == 18

    def test_pop_header_decreases(self):
        r = self.make("h.mpls.setInvalid();")
        assert r.max_decrease == 4
        assert r.byte_stack_size == 14

    def test_same_header_setvalid_twice_counts_once(self):
        r = self.make("h.mpls.setValid(); h.mpls.setValid();")
        assert r.max_increase == 4

    def test_branches_take_max(self):
        r = self.make(
            "if (h.eth.etherType == 1) { h.mpls.setValid(); } else { h.ipv4.setValid(); }"
        )
        assert r.max_increase == 20

    def test_unemitted_header_counts_as_decrease(self):
        # Parser extracts eth but the deparser never emits it.
        r = self.make("h.eth.srcMac = 1;", deparser_body="")
        assert r.max_decrease == 14

    def test_min_packet_size_takes_min_path(self):
        src = """
        struct hdr_t { eth_h eth; ipv4_h ipv4; }
        program T : implements Unicast<> {
          parser P(extractor ex, pkt p, out hdr_t h) {
            state start {
              ex.extract(p, h.eth);
              transition select(h.eth.etherType) {
                0x0800 : v4;
                default : accept;
              }
            }
            state v4 { ex.extract(p, h.ipv4); transition accept; }
          }
          control C(pkt p, inout hdr_t h, im_t im) { apply { } }
          control D(emitter em, pkt p, in hdr_t h) {
            apply { em.emit(p, h.eth); em.emit(p, h.ipv4); }
          }
        }
        T(P, C, D) main;
        """
        linked = link_modules(check(src, "t"), [])
        r = analyze(linked)
        assert r.min_packet_size == 14
        assert r.extract_length == 34
