"""PDG slicing tests reproducing the paper's Fig. 13 example.

The ``validate`` orchestration program runs a production module and a
test module over copies of the same packet, logs mismatches, and emits
both copies — three pkt instances (p, pm, pt), hence three slices.
"""

import pytest

from repro.errors import AnalysisError
from repro.frontend.typecheck import check_program
from repro.midend.pdg import build_pdg
from repro.midend.slicing import build_pps, compute_slices, plan_replication

FIG13 = """
struct h_t { bit<8> x; }

prog(pkt p, im_t im, out h_t hp);
test(pkt p, im_t im, out h_t ht);
log(pkt p, im_t im, in h_t a, in h_t b);

program Validate : implements Orchestration<> {
  control C(pkt p, im_t i, out_buf ob) {
    pkt pt;
    pkt pm;
    im_t it;
    im_t im;
    h_t hp;
    h_t ht;
    prog() prog_i;
    test() test_i;
    log() log_i;
    apply {
      pm.copy_from(p);        // c1: slice 1
      im.copy_from(i);
      pt.copy_from(p);        // c3: slice 3
      it.copy_from(i);
      prog_i.apply(p, i, hp);     // slices 2, 1
      test_i.apply(pt, it, ht);   // slices 3, 1
      if (hp.x != ht.x) {
        log_i.apply(pm, im, hp, ht);
        ob.enqueue(pm, im);
      }
      it.set_out_port(DROP);
      ob.enqueue(p, i);
      ob.enqueue(pt, it);
    }
  }
}
"""


@pytest.fixture(scope="module")
def validate_control():
    module = check_program(FIG13, "fig13")
    return module.programs["Validate"].control


@pytest.fixture(scope="module")
def plan(validate_control):
    return plan_replication(validate_control)


def node_named(pdg, fragment):
    hits = [n for n in pdg.nodes if fragment in n.describe()]
    assert hits, f"no PDG node matching {fragment!r}"
    return hits[0]


class TestPdg:
    def test_node_count(self, plan):
        # 11 leaf statements in the apply block.
        assert len(plan.pdg.nodes) == 11

    def test_copy_from_defines_instance(self, plan):
        node = node_named(plan.pdg, "pm.copy_from")
        assert "pm" in node.defs and "pm" in node.pkt_defs
        assert "p" in node.uses

    def test_module_apply_redefines_packet(self, plan):
        node = node_named(plan.pdg, "prog_i.apply")
        assert "p" in node.pkt_defs and "p" in node.pkt_uses
        assert "hp" in node.defs

    def test_exit_points(self, plan):
        exits = plan.pdg.exit_nodes()
        assert len(exits) == 3
        assert sorted(e.exit_instance for e in exits) == ["p", "pm", "pt"]

    def test_control_dependence_on_condition(self, plan):
        log_node = node_named(plan.pdg, "log_i.apply")
        incoming_vars = {e.var for e in plan.pdg.predecessors(log_node.id)}
        assert "hp" in incoming_vars and "ht" in incoming_vars


class TestSlices:
    def test_three_slices(self, plan):
        assert sorted(plan.slices) == ["p", "pm", "pt"]

    def test_slice_pm_includes_both_applies(self, plan):
        """Fig. 13: prog.apply is /*2,1*/ and test.apply is /*3,1*/."""
        pm_slice = plan.slices["pm"].node_ids
        assert node_named(plan.pdg, "prog_i.apply").id in pm_slice
        assert node_named(plan.pdg, "test_i.apply").id in pm_slice

    def test_slice_pm_excludes_pt_copy(self, plan):
        """pt.copy_from is /*3*/ only: other lineages are not crossed."""
        pm_slice = plan.slices["pm"].node_ids
        assert node_named(plan.pdg, "pt.copy_from").id not in pm_slice

    def test_slice_p_minimal(self, plan):
        """Slice 2 (p): prog.apply + the copies reading p + its enqueue."""
        p_slice = plan.slices["p"].node_ids
        assert node_named(plan.pdg, "prog_i.apply").id in p_slice
        assert node_named(plan.pdg, "ob.enqueue(p, i)").id in p_slice
        assert node_named(plan.pdg, "log_i.apply").id not in p_slice

    def test_slice_pt_includes_its_copy(self, plan):
        pt_slice = plan.slices["pt"].node_ids
        assert node_named(plan.pdg, "pt.copy_from").id in pt_slice
        assert node_named(plan.pdg, "test_i.apply").id in pt_slice


class TestPps:
    def test_threads_per_instance(self, plan):
        assert sorted(plan.pps.threads) == ["p", "pm", "pt"]

    def test_method_calls_owned_by_processed_instance(self, plan):
        test_node = node_named(plan.pdg, "test_i.apply")
        assert test_node.id in plan.pps.threads["pt"].node_ids
        assert test_node.id not in plan.pps.threads["pm"].node_ids

    def test_schedule_orders_producers_first(self, plan):
        order = plan.schedule()
        assert order.index("p") < order.index("pm")
        assert order.index("pt") < order.index("pm")

    def test_serializable(self, plan):
        # No exception: the Fig. 13 program is a DAG of threads.
        assert plan.pps.edges


class TestNonSerializable:
    def test_thread_cycle_rejected(self):
        """Two instances feeding each other's processing is rejected."""
        src = """
        struct h_t { bit<8> x; }
        fwd(pkt p, im_t im, out h_t o);

        program Cyclic : implements Orchestration<> {
          control C(pkt p, im_t i, out_buf ob) {
            pkt q;
            h_t a;
            h_t b;
            fwd() f1;
            fwd() f2;
            apply {
              q.copy_from(p);
              f1.apply(p, i, a);
              if (a.x == 1) { q.copy_from(p); }
              f2.apply(q, i, b);
              if (b.x == 1) { p.copy_from(q); }
              f1.apply(p, i, a);
              ob.enqueue(p, i);
              ob.enqueue(q, i);
            }
          }
        }
        """
        module = check_program(src, "cyclic")
        control = module.programs["Cyclic"].control
        with pytest.raises(AnalysisError):
            plan_replication(control)
