"""Unit tests for the deparser→MAT transformation (§5.3)."""

import pytest

from repro.errors import AnalysisError, ResourceError
from repro.frontend import astnodes as ast
from repro.ir.printer import expr_text
from repro.ir.parse_graph import build_parse_graph
from repro.midend.bytestack import ByteStack
from repro.midend.deparser_to_mat import deparser_to_mat

from tests.midend.conftest import check

SRC = """
struct dp_t { eth_h eth; mpls_h mpls; }
program DP : implements Unicast<> {
  parser P(extractor ex, pkt p, out dp_t h) {
    state start {
      ex.extract(p, h.eth);
      transition select(h.eth.etherType) {
        0x8847 : parse_mpls;
        default : accept;
      }
    }
    state parse_mpls { ex.extract(p, h.mpls); transition accept; }
  }
  control C(pkt p, inout dp_t h, im_t im) { apply { } }
  control D(emitter em, pkt p, in dp_t h) {
    apply {
      em.emit(p, h.eth);
      em.emit(p, h.mpls);
    }
  }
}
"""


@pytest.fixture(scope="module")
def mat():
    info = check(SRC).programs["DP"]
    paths = build_parse_graph(info.parser).paths()
    return deparser_to_mat(info.deparser, paths, 0, ByteStack(18), "m"), paths


class TestStructure:
    def test_keys_path_then_validity(self, mat):
        table = mat[0].table
        kinds = [k.match_kind for k in table.keys]
        assert kinds == ["exact", "exact", "exact"]
        assert expr_text(table.keys[0].expr) == "m_path"
        assert "isValid" in expr_text(table.keys[1].expr)

    def test_entry_count_paths_times_combos(self, mat):
        # 2 paths × 2^2 validity combos, minus combos overflowing Bs=18.
        table = mat[0].table
        assert len(table.const_entries) == 8

    def test_actions_deduplicated(self):
        """Paths with identical extraction share copy-back actions."""
        src = """
        struct dd_t { eth_h eth; ipv4_h ipv4; }
        program DD : implements Unicast<> {
          parser P(extractor ex, pkt p, out dd_t h) {
            state start {
              ex.extract(p, h.eth);
              transition select(h.eth.etherType) {
                0x0800 : v4a;
                0x0801 : v4b;
              }
            }
            state v4a { ex.extract(p, h.ipv4); transition accept; }
            state v4b { ex.extract(p, h.ipv4); transition accept; }
          }
          control C(pkt p, inout dd_t h, im_t im) { apply { } }
          control D(emitter em, pkt p, in dd_t h) {
            apply { em.emit(p, h.eth); em.emit(p, h.ipv4); }
          }
        }
        """
        info = check(src).programs["DD"]
        paths = build_parse_graph(info.parser).paths()
        assert len(paths) == 2
        result = deparser_to_mat(info.deparser, paths, 0, ByteStack(34), "d")
        entries = result.table.const_entries
        used = {e.action_name for e in entries}
        assert len(entries) == 8 and len(used) == 4

    def test_default_noop(self, mat):
        table = mat[0].table
        noop = table.default_action
        assert noop.endswith("noop")


class TestShiftSynthesis:
    def entry_action(self, mat_result, path_id, combo):
        table, actions = mat_result.table, mat_result.actions
        for entry in table.const_entries:
            if entry.keysets[0].value != path_id:
                continue
            values = tuple(bool(k.value) for k in entry.keysets[1:])
            if values == combo:
                return actions[entry.action_name]
        raise AssertionError("entry not found")

    def test_popped_header_shifts_tail_up(self, mat):
        mat_result, paths = mat
        # Path 2 = eth+mpls (18 B); combo (eth valid, mpls invalid):
        # new_len 14, delta -4: the action must shift and shrink bs_len.
        mpls_path = next(
            i + 1 for i, p in enumerate(paths) if p.extract_len == 18
        )
        action = self.entry_action(mat_result, mpls_path, (True, False))
        text = "\n".join(
            expr_text(s.lhs) + "=" + expr_text(s.rhs)
            for s in action.body.stmts
            if isinstance(s, ast.AssignStmt)
        )
        assert "upa_bs_len=(upa_bs_len + 16w0xfffc)" in text  # -4 mod 2^16

    def test_unchanged_combo_has_no_shift(self, mat):
        mat_result, paths = mat
        eth_path = next(
            i + 1 for i, p in enumerate(paths) if p.extract_len == 14
        )
        action = self.entry_action(mat_result, eth_path, (True, False))
        for stmt in action.body.stmts:
            if isinstance(stmt, ast.AssignStmt):
                assert "upa_bs_len" not in expr_text(stmt.lhs)

    def test_pushed_header_grows(self, mat):
        mat_result, paths = mat
        eth_path = next(
            i + 1 for i, p in enumerate(paths) if p.extract_len == 14
        )
        action = self.entry_action(mat_result, eth_path, (True, True))
        text = "\n".join(
            expr_text(s.lhs) + "=" + expr_text(s.rhs)
            for s in action.body.stmts
            if isinstance(s, ast.AssignStmt)
        )
        assert "upa_bs_len=(upa_bs_len + 16w0x4)" in text


class TestRejections:
    def test_conditional_deparser_rejected(self):
        bad = SRC.replace(
            "em.emit(p, h.eth);",
            "if (h.eth.isValid()) { em.emit(p, h.eth); }",
        )
        info = check(bad).programs["DP"]
        paths = build_parse_graph(info.parser).paths()
        with pytest.raises(AnalysisError):
            deparser_to_mat(info.deparser, paths, 0, ByteStack(18), "m")

    def test_non_emit_call_rejected(self):
        bad = SRC.replace(
            "em.emit(p, h.mpls);", "im.drop();"
        ).replace(
            "control D(emitter em, pkt p, in dp_t h)",
            "control D(emitter em, pkt p, in dp_t h, im_t im)",
        )
        info = check(bad).programs["DP"]
        paths = build_parse_graph(info.parser).paths()
        with pytest.raises(AnalysisError):
            deparser_to_mat(info.deparser, paths, 0, ByteStack(18), "m")
