"""Tests for the §8.1 trivial-MAT elision optimization."""

import pytest

from repro.backend.tna import TnaBackend
from repro.lib.catalog import PROGRAMS, build_pipeline
from repro.midend.optimize import OptimizationStats, elide_trivial_mats
from repro.targets.pipeline import PipelineInstance
from repro.targets.runtime_api import RuntimeAPI

from tests.integration.helpers import ENTRY_SETS, standard_corpus


def optimized_instance(name):
    composed = build_pipeline(name, optimize=True)
    instance = PipelineInstance(composed)
    api = RuntimeAPI(instance)
    for table, matches, act_micro, _, args in ENTRY_SETS[name]:
        api.add_entry(table, matches, act_micro, args)
    return instance


class TestElision:
    def test_stats_reported(self):
        composed = build_pipeline("P4")
        stats = elide_trivial_mats(composed)
        assert isinstance(stats, OptimizationStats)
        assert stats.total >= 3

    def test_dispatch_parser_mat_elided(self):
        composed = build_pipeline("P4", optimize=True)
        # The L3 dispatch module parses nothing: its parser MAT is gone.
        assert "main_l3_i_parser_tbl" not in composed.tables

    def test_single_path_leaf_parsers_gatewayed(self):
        composed = build_pipeline("P4")
        stats = elide_trivial_mats(composed)
        assert any("ipv4_i_parser" in n for n in stats.gatewayed_parser_mats)

    def test_empty_deparser_elided(self):
        composed = build_pipeline("P4", optimize=True)
        assert "main_l3_i_deparser_tbl" not in composed.tables

    def test_main_parser_kept(self):
        # The main parser extracts Ethernet and must survive (as a MAT
        # or gateway); the forwarding table is untouched.
        composed = build_pipeline("P4", optimize=True)
        assert "main_forward_tbl" in composed.tables

    def test_idempotent(self):
        composed = build_pipeline("P4", optimize=True)
        stats = elide_trivial_mats(composed)
        assert stats.total == 0

    def test_monolithic_untouched(self):
        from repro.lib.catalog import build_monolithic

        composed = build_monolithic("P4")
        before = len(composed.tables)
        stats = elide_trivial_mats(composed)
        assert stats.total == 0 and len(composed.tables) == before


class TestResourceEffect:
    @pytest.mark.parametrize("name", PROGRAMS)
    def test_never_more_tables(self, name):
        plain = build_pipeline(name)
        opt = build_pipeline(name, optimize=True)
        assert len(opt.tables) < len(plain.tables)

    @pytest.mark.parametrize("name", PROGRAMS)
    def test_never_more_stages(self, name):
        backend = TnaBackend()
        plain = backend.compile(build_pipeline(name))
        opt = backend.compile(build_pipeline(name, optimize=True))
        assert opt.num_stages <= plain.num_stages


class TestBehaviorPreserved:
    @pytest.mark.parametrize("name", PROGRAMS)
    def test_optimized_equals_unoptimized(self, name):
        from tests.integration.helpers import make_instance

        plain = make_instance(name, "micro")
        opt = optimized_instance(name)
        for pkt in standard_corpus(name):
            a = plain.process(pkt.copy(), 1)
            b = opt.process(pkt.copy(), 1)
            assert len(a) == len(b), f"{name}: {pkt!r}"
            for x, y in zip(a, b):
                assert x.port == y.port
                assert x.packet.tobytes() == y.packet.tobytes()
