"""Unit tests for parse-graph construction and path enumeration."""

import pytest

from repro.errors import AnalysisError
from repro.frontend import astnodes as ast
from repro.ir.parse_graph import build_parse_graph

from tests.midend.conftest import check

FIG10_PARSER = """
struct meta_t2 { bit<8> data1; bit<8> data2; }
struct hdr_t { eth_h eth; ipv4_h ipv4; ipv6_h ipv6; tcp_h tcp; }

program Fig10 : implements Unicast<> {
  parser P(extractor ex, pkt p, out hdr_t h, inout meta_t2 m) {
    bit<8> var_y;
    state start {
      ex.extract(p, h.eth);
      transition select(h.eth.etherType) {
        0x86DD : parse_ipv6;
        0x0800 : parse_ipv4;
      }
    }
    state parse_ipv6 {
      ex.extract(p, h.ipv6);
      var_y = m.data1;
      transition select(h.ipv6.nextHdr) { 0x6 : parse_tcp; }
    }
    state parse_ipv4 {
      ex.extract(p, h.ipv4);
      var_y = m.data2;
      transition select(h.ipv4.protocol) { 0x6 : parse_tcp; }
    }
    state parse_tcp {
      ex.extract(p, h.tcp);
      transition select(var_y) { 0xFF : accept; }
    }
  }
  control C(pkt p, inout hdr_t h, im_t im) { apply { } }
  control D(emitter em, pkt p, in hdr_t h) {
    apply { em.emit(p, h.eth); em.emit(p, h.ipv6); em.emit(p, h.ipv4); em.emit(p, h.tcp); }
  }
}
"""


@pytest.fixture
def fig10_graph():
    mod = check(FIG10_PARSER)
    return build_parse_graph(mod.programs["Fig10"].parser)


class TestFig10Paths:
    """Checks the paper's Fig. 10 static-analysis example."""

    def test_two_paths(self, fig10_graph):
        assert len(fig10_graph.paths()) == 2

    def test_path_extract_lengths(self, fig10_graph):
        lengths = sorted(p.extract_len for p in fig10_graph.paths())
        assert lengths == [54, 74]  # eth-ipv4-tcp and eth-ipv6-tcp

    def test_extract_length_is_max(self, fig10_graph):
        assert fig10_graph.extract_length == 74

    def test_min_extract_length(self, fig10_graph):
        assert fig10_graph.min_extract_length == 54

    def test_extract_offsets(self, fig10_graph):
        v6_path = [p for p in fig10_graph.paths() if p.extract_len == 74][0]
        assert [(e.offset, e.size) for e in v6_path.extracts] == [
            (0, 14),
            (14, 40),
            (54, 20),
        ]

    def test_forward_substitution(self, fig10_graph):
        """var_y in the final select is replaced per path (Fig. 10b)."""
        for path in fig10_graph.paths():
            last_condition = path.conditions[-1]
            assert isinstance(last_condition.subject, ast.MemberExpr)
            assert last_condition.subject.member in ("data1", "data2")

    def test_conditions_count(self, fig10_graph):
        for path in fig10_graph.paths():
            assert len(path.conditions) == 3  # etherType, nexthdr/proto, var_y

    def test_extracted_header_types(self, fig10_graph):
        names = dict(fig10_graph.extracted_header_types())
        assert set(names) == {"h.eth", "h.ipv4", "h.ipv6", "h.tcp"}
        assert names["h.ipv6"].byte_width == 40

    def test_path_names_stable(self, fig10_graph):
        names = {p.name() for p in fig10_graph.paths()}
        assert names == {"h_eth_h_ipv4_h_tcp", "h_eth_h_ipv6_h_tcp"}


class TestGraphShapes:
    def test_empty_parser(self):
        mod = check(
            """
            struct e_t {}
            program E : implements Unicast<> {
              parser P(extractor ex, pkt p, out e_t h) {
                state start { transition accept; }
              }
              control C(pkt p, inout e_t h, im_t im) { apply { } }
              control D(emitter em, pkt p, in e_t h) { apply { } }
            }
            """
        )
        graph = build_parse_graph(mod.programs["E"].parser)
        assert graph.extract_length == 0
        assert len(graph.paths()) == 1

    def test_reject_path_dropped(self):
        mod = check(
            """
            struct hdr_t { eth_h eth; }
            program R : implements Unicast<> {
              parser P(extractor ex, pkt p, out hdr_t h) {
                state start {
                  ex.extract(p, h.eth);
                  transition select(h.eth.etherType) {
                    0x0800 : accept;
                    default : reject;
                  }
                }
              }
              control C(pkt p, inout hdr_t h, im_t im) { apply { } }
              control D(emitter em, pkt p, in hdr_t h) { apply { em.emit(p, h.eth); } }
            }
            """
        )
        graph = build_parse_graph(mod.programs["R"].parser)
        assert len(graph.paths()) == 1
        assert graph.paths()[0].extract_len == 14

    def test_no_default_implies_reject(self):
        mod = check(
            """
            struct hdr_t { eth_h eth; ipv4_h ipv4; }
            program N : implements Unicast<> {
              parser P(extractor ex, pkt p, out hdr_t h) {
                state start {
                  ex.extract(p, h.eth);
                  transition select(h.eth.etherType) { 0x0800 : v4; }
                }
                state v4 { ex.extract(p, h.ipv4); transition accept; }
              }
              control C(pkt p, inout hdr_t h, im_t im) { apply { } }
              control D(emitter em, pkt p, in hdr_t h) { apply { em.emit(p, h.eth); em.emit(p, h.ipv4); } }
            }
            """
        )
        graph = build_parse_graph(mod.programs["N"].parser)
        assert len(graph.paths()) == 1  # only the 0x0800 path accepts

    def test_cycle_rejected(self):
        mod = check(
            """
            struct hdr_t { eth_h eth; }
            program Cy : implements Unicast<> {
              parser P(extractor ex, pkt p, out hdr_t h) {
                state start { transition loop; }
                state loop { transition start; }
              }
              control C(pkt p, inout hdr_t h, im_t im) { apply { } }
              control D(emitter em, pkt p, in hdr_t h) { apply { } }
            }
            """
        )
        with pytest.raises(AnalysisError):
            build_parse_graph(mod.programs["Cy"].parser)

    def test_diamond_paths(self):
        mod = check(
            """
            struct hdr_t { eth_h eth; ipv4_h ipv4; ipv6_h ipv6; tcp_h tcp; }
            program Dm : implements Unicast<> {
              parser P(extractor ex, pkt p, out hdr_t h) {
                state start {
                  ex.extract(p, h.eth);
                  transition select(h.eth.etherType) {
                    0x0800 : a; 0x86DD : b;
                  }
                }
                state a { ex.extract(p, h.ipv4); transition t; }
                state b { ex.extract(p, h.ipv6); transition t; }
                state t { ex.extract(p, h.tcp); transition accept; }
              }
              control C(pkt p, inout hdr_t h, im_t im) { apply { } }
              control D(emitter em, pkt p, in hdr_t h) { apply { } }
            }
            """
        )
        graph = build_parse_graph(mod.programs["Dm"].parser)
        assert len(graph.paths()) == 2
        # Shared tail state appears in both paths at different offsets.
        offsets = sorted(p.extracts[-1].offset for p in graph.paths())
        assert offsets == [34, 54]
