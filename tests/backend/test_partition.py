"""Unit tests for the §5.5 ingress/egress partitioning FSM."""

import pytest

from repro.backend.base import extract_logical_tables
from repro.backend.partition import partition
from repro.errors import BackendError
from repro.frontend.typecheck import check_program
from repro.midend.inline import compose
from repro.midend.linker import link_modules


def composed_of(control_body):
    src = """
    header eth_h { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
    struct hdr_t { eth_h eth; }
    program T : implements Unicast<> {
      parser P(extractor ex, pkt p, out hdr_t h) {
        state start { ex.extract(p, h.eth); transition accept; }
      }
      control C(pkt p, inout hdr_t h, im_t im) {
        %s
        apply { %s }
      }
      control D(emitter em, pkt p, in hdr_t h) { apply { em.emit(p, h.eth); } }
    }
    T(P, C, D) main;
    """
    locals_, body = control_body
    module = check_program(src % (locals_, body), "t")
    return compose(link_modules(module, []))


class TestPartition:
    def test_pure_ingress_program(self):
        composed = composed_of(("", "im.set_out_port(8w1);"))
        tables = extract_logical_tables(composed)
        split = partition(tables, composed.actions)
        assert split.egress == []
        assert len(split.ingress) == len(tables)

    def test_egress_only_meta_splits(self):
        composed = composed_of(
            (
                "bit<32> qd;",
                """
                im.set_out_port(8w1);
                qd = im.get_value(meta_t.QUEUE_DEPTH);
                h.eth.etherType = (bit<16>) qd;
                """,
            )
        )
        tables = extract_logical_tables(composed)
        split = partition(tables, composed.actions)
        assert split.ingress and split.egress
        # The queue-depth read and the dependent write land in egress.
        egress_writes = set()
        for t in split.egress:
            egress_writes |= t.writes
        assert "main_hdr.eth.etherType" in egress_writes

    def test_ingress_op_after_egress_meta_rejected(self):
        composed = composed_of(
            (
                "bit<32> qd;",
                """
                qd = im.get_value(meta_t.QUEUE_DEPTH);
                im.set_out_port((bit<8>) qd);
                """,
            )
        )
        tables = extract_logical_tables(composed)
        with pytest.raises(BackendError):
            partition(tables, composed.actions)

    def test_partition_metadata_synthesized(self):
        composed = composed_of(
            (
                "bit<32> qd; bit<16> saved;",
                """
                saved = h.eth.etherType + 1;
                im.set_out_port(8w1);
                qd = im.get_value(meta_t.QUEUE_DEPTH);
                h.eth.etherType = saved;
                """,
            )
        )
        tables = extract_logical_tables(composed)
        split = partition(tables, composed.actions)
        assert "main_saved" in split.partition_metadata


class TestV1ModelBackend:
    def test_generates_source(self):
        from repro.backend.v1model import V1ModelBackend
        from repro.lib.catalog import build_pipeline

        program = V1ModelBackend().compile(build_pipeline("P4"))
        text = program.source_text
        assert "control Ingress()" in text
        assert "main_forward_tbl" in text
        assert "upa_bs" in text

    def test_monolithic_renders_native_parser(self):
        from repro.backend.v1model import V1ModelBackend
        from repro.lib.catalog import build_monolithic

        program = V1ModelBackend().compile(build_monolithic("P4"))
        assert "parser" in program.source_text
        assert "po.emit" in program.source_text

    def test_all_tables_in_ingress_by_default(self):
        from repro.backend.v1model import V1ModelBackend
        from repro.lib.catalog import build_pipeline

        program = V1ModelBackend().compile(build_pipeline("P4"))
        assert program.egress_table_names == []
        assert len(program.ingress_table_names) > 5
