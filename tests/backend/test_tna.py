"""Unit tests for the TNA backend: PHV, splitting, stage scheduling."""

import pytest

from repro.backend.base import extract_logical_tables
from repro.backend.tna import TnaBackend
from repro.backend.tna.descriptor import TofinoDescriptor
from repro.backend.tna.phv import (
    _chunks_align16,
    _chunks_bestfit,
    _chunks_greedy,
    allocate_phv,
)
from repro.backend.tna.split import analyze_assignments, rhs_pieces
from repro.errors import ResourceError
from repro.lib.catalog import build_monolithic, build_pipeline


class TestChunkPolicies:
    @pytest.mark.parametrize(
        "width,expected",
        [(8, [8]), (4, [8]), (16, [16]), (20, [32]), (32, [32]), (48, [32, 16]),
         (112, [32, 32, 32, 16]), (128, [32, 32, 32, 32])],
    )
    def test_greedy(self, width, expected):
        if width <= 32:
            assert _chunks_greedy(width) == ([32] if 16 < width <= 32 else
                                             [16] if 8 < width else [8])
        else:
            assert _chunks_greedy(width) == expected

    @pytest.mark.parametrize(
        "width,expected",
        [(1, [8]), (8, [8]), (9, [16]), (16, [16]), (17, [32]), (32, [32]),
         (48, [32, 16])],
    )
    def test_bestfit(self, width, expected):
        assert _chunks_bestfit(width) == expected

    @pytest.mark.parametrize(
        "width,expected",
        [(4, [8]), (13, [16]), (20, [32]), (48, [16, 16, 16]),
         (128, [16] * 8)],
    )
    def test_align16(self, width, expected):
        assert _chunks_align16(width) == expected


class TestPhvAllocation:
    def test_micro_dominated_by_16b(self):
        phv = allocate_phv(build_pipeline("P4"), align=True)
        counts = phv.counts()
        assert counts[16] > counts[32]
        assert counts[16] > counts[8]

    def test_mono_dominated_by_32b_bits(self):
        phv = allocate_phv(build_monolithic("P4"), align=True)
        counts = phv.counts()
        assert counts[32] * 32 > counts[16] * 16

    def test_micro_allocates_more_bits_than_mono(self):
        micro = allocate_phv(build_pipeline("P4"))
        mono = allocate_phv(build_monolithic("P4"))
        assert micro.bits_allocated > mono.bits_allocated

    def test_byte_stack_pairs_merged_when_aligned(self):
        aligned = allocate_phv(build_pipeline("P4"), align=True)
        unaligned = allocate_phv(build_pipeline("P4"), align=False)
        assert unaligned.counts()[8] > aligned.counts()[8]
        assert aligned.counts()[16] > 0

    def test_capacity_failure(self):
        phv = allocate_phv(build_pipeline("P4"))
        tiny = TofinoDescriptor().scaled(0.05)
        with pytest.raises(ResourceError):
            phv.check_capacity(tiny)

    def test_capacity_spill(self):
        phv = allocate_phv(build_pipeline("P4"))
        phv.check_capacity(TofinoDescriptor())  # must not raise

    def test_sources_for_lookup(self):
        phv = allocate_phv(build_pipeline("P4"), align=True)
        name = "upa_bs.b0"
        assert len(phv.sources_for(name, 7, 0)) == 1


class TestSplitPass:
    def test_rhs_pieces_concat(self):
        from repro.frontend import astnodes as ast

        def fld(name, w):
            e = ast.PathExpr(name=name)
            e.type = ast.BitType(width=w)
            return e

        concat = ast.BinaryExpr(op="++", left=fld("a", 8), right=fld("b", 8))
        concat.type = ast.BitType(width=16)
        pieces = rhs_pieces(concat)
        assert [(p.source, p.width) for p in pieces] == [("a", 8), ("b", 8)]

    def test_rhs_pieces_slice_of_concat(self):
        from repro.frontend import astnodes as ast

        def fld(name, w):
            e = ast.PathExpr(name=name)
            e.type = ast.BitType(width=w)
            return e

        concat = ast.BinaryExpr(op="++", left=fld("a", 8), right=fld("b", 8))
        concat.type = ast.BitType(width=16)
        sliced = ast.SliceExpr(base=concat, hi=11, lo=4)
        pieces = rhs_pieces(sliced)
        assert [(p.source, p.width, p.bit_hi, p.bit_lo) for p in pieces] == [
            ("a", 4, 3, 0),
            ("b", 4, 7, 4),
        ]

    def test_unaligned_micro_has_violations(self):
        composed = build_pipeline("P4")
        tables = extract_logical_tables(composed)
        phv = allocate_phv(composed, align=False)
        result = analyze_assignments(tables, phv, TofinoDescriptor(), enabled=True)
        assert result.violations
        assert result.total_extra_depth > 0

    def test_unaligned_without_split_fails(self):
        composed = build_pipeline("P4")
        tables = extract_logical_tables(composed)
        phv = allocate_phv(composed, align=False)
        with pytest.raises(ResourceError):
            analyze_assignments(tables, phv, TofinoDescriptor(), enabled=False)

    def test_aligned_micro_mostly_clean(self):
        composed = build_pipeline("P4")
        tables = extract_logical_tables(composed)
        phv = allocate_phv(composed, align=True)
        result = analyze_assignments(tables, phv, TofinoDescriptor(), enabled=True)
        # The alignment pass is the paper's fix: far fewer split chains.
        unaligned = analyze_assignments(
            tables, allocate_phv(composed, align=False), TofinoDescriptor()
        )
        assert result.total_extra_depth <= unaligned.total_extra_depth


class TestStages:
    def test_micro_uses_more_stages_than_mono(self):
        backend = TnaBackend()
        for name in ("P1", "P4"):
            micro = backend.compile(build_pipeline(name))
            mono = backend.compile(build_monolithic(name))
            assert micro.num_stages > mono.num_stages

    def test_micro_stage_range_matches_paper(self):
        """Paper Table 3: µP4 programs use 5–9 stages."""
        backend = TnaBackend()
        for name in ("P1", "P2", "P3", "P4", "P5", "P6", "P7"):
            micro = backend.compile(build_pipeline(name))
            assert 5 <= micro.num_stages <= 9, (name, micro.num_stages)

    def test_mono_stage_range_matches_paper(self):
        """Paper Table 3: monolithic programs use 3–4 stages (ours 2–4)."""
        backend = TnaBackend()
        for name in ("P1", "P2", "P3", "P4", "P5", "P6", "P7"):
            mono = backend.compile(build_monolithic(name))
            assert 2 <= mono.num_stages <= 4, (name, mono.num_stages)

    def test_stage_budget_enforced(self):
        backend = TnaBackend(
            descriptor=TofinoDescriptor(num_stages=3)
        )
        with pytest.raises(ResourceError):
            backend.compile(build_pipeline("P4"))

    def test_exclusive_tables_share_stage(self):
        backend = TnaBackend()
        report = backend.compile(build_monolithic("P4"))
        placement = report.schedule.placement
        assert placement["main_ipv4_lpm_tbl"] == placement["main_ipv6_lpm_tbl"]


class TestReports:
    def test_summary_text(self):
        backend = TnaBackend()
        report = backend.compile(build_pipeline("P4"))
        text = report.summary()
        assert "Eth" in text and "stages=" in text

    def test_overhead_row_signs(self):
        """Table 2's qualitative shape: more 16b, fewer 32b, more bits."""
        from repro.backend.tna.report import overhead_row

        backend = TnaBackend()
        micro = backend.compile(build_pipeline("P4"))
        mono = backend.compile(build_monolithic("P4"))
        row = overhead_row("P4", micro, mono)
        assert row.pct_16b > 100.0
        assert row.pct_32b < 0.0
        assert row.pct_bits > 0.0

    def test_row_with_failed_mono(self):
        from repro.backend.tna.report import overhead_row

        backend = TnaBackend()
        micro = backend.compile(build_pipeline("P4"))
        row = overhead_row("P4", micro, None)
        assert row.pct_16b is None
        assert "n/a" in row.render()
