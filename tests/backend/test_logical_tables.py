"""Unit tests for logical-table extraction and dependency analysis."""

import pytest

from repro.backend.base import LogicalTable, extract_logical_tables
from repro.lib.catalog import build_monolithic, build_pipeline


@pytest.fixture(scope="module")
def p4_micro_tables():
    return extract_logical_tables(build_pipeline("P4"))


@pytest.fixture(scope="module")
def p4_mono_tables():
    return extract_logical_tables(build_monolithic("P4"))


class TestExtraction:
    def test_micro_has_synthesized_mats(self, p4_micro_tables):
        names = [t.name for t in p4_micro_tables]
        assert "main_parser_tbl" in names
        assert "main_deparser_tbl" in names
        assert any("ipv4_lpm_tbl" in n for n in names)

    def test_mono_has_only_user_tables(self, p4_mono_tables):
        match_names = [t.name for t in p4_mono_tables if t.kind == "match"]
        assert sorted(match_names) == [
            "main_forward_tbl",
            "main_ipv4_lpm_tbl",
            "main_ipv6_lpm_tbl",
        ]

    def test_statement_runs_created(self, p4_mono_tables):
        assert any(t.kind == "statements" for t in p4_mono_tables)

    def test_order_preserved(self, p4_micro_tables):
        names = [t.name for t in p4_micro_tables]
        assert names.index("main_parser_tbl") < names.index("main_forward_tbl")
        assert names.index("main_forward_tbl") < names.index("main_deparser_tbl")


class TestDataflow:
    def test_forward_tbl_matches_nh(self, p4_mono_tables):
        fwd = next(t for t in p4_mono_tables if t.name == "main_forward_tbl")
        assert "main_nh" in fwd.key_reads

    def test_lpm_guarded_by_validity(self, p4_mono_tables):
        lpm = next(t for t in p4_mono_tables if t.name == "main_ipv4_lpm_tbl")
        assert "main_hdr.ipv4.$valid" in lpm.guard_reads

    def test_lpm_writes_ttl_and_nh(self, p4_mono_tables):
        lpm = next(t for t in p4_mono_tables if t.name == "main_ipv4_lpm_tbl")
        assert "main_hdr.ipv4.ttl" in lpm.writes
        assert "main_nh" in lpm.writes

    def test_im_write_recorded(self, p4_mono_tables):
        fwd = next(t for t in p4_mono_tables if t.name == "main_forward_tbl")
        assert "im.out" in fwd.writes


class TestDependencies:
    def test_match_dependency(self, p4_mono_tables):
        lpm = next(t for t in p4_mono_tables if t.name == "main_ipv4_lpm_tbl")
        fwd = next(t for t in p4_mono_tables if t.name == "main_forward_tbl")
        assert fwd.depends_on(lpm) == "match"

    def test_exclusive_branches_no_dependency(self, p4_mono_tables):
        v4 = next(t for t in p4_mono_tables if t.name == "main_ipv4_lpm_tbl")
        v6 = next(t for t in p4_mono_tables if t.name == "main_ipv6_lpm_tbl")
        assert v4.exclusive_with(v6)
        assert v6.depends_on(v4) is None

    def test_independent_tables(self):
        a = LogicalTable(name="a", kind="match", writes={"x"})
        b = LogicalTable(name="b", kind="match", key_reads={"y"})
        assert b.depends_on(a) is None

    def test_action_dependency(self):
        a = LogicalTable(name="a", kind="match", writes={"x"})
        b = LogicalTable(name="b", kind="match", action_reads={"x"})
        assert b.depends_on(a) == "action"

    def test_waw_shares_stage(self):
        a = LogicalTable(name="a", kind="match", writes={"x"})
        b = LogicalTable(name="b", kind="match", writes={"x"})
        assert b.depends_on(a) is None
