"""Tests of the pass-tracing span API."""

import pytest

from repro.obs.trace import NULL_TRACER, Span, Tracer, _NULL_SPAN


class TestSpanNesting:
    def test_spans_nest(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                with tracer.span("leaf"):
                    pass
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]

    def test_sibling_roots(self):
        tracer = Tracer(enabled=True)
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots] == ["first", "second"]

    def test_durations_recorded(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work"):
            sum(range(1000))
        span = tracer.find("work")
        assert span.duration > 0.0
        assert span.duration_ms == span.duration * 1000.0
        assert tracer.total_ms() >= span.duration_ms

    def test_attrs_at_open_and_set(self):
        tracer = Tracer(enabled=True)
        with tracer.span("pass", modules=4) as sp:
            sp.set(tables=11)
        span = tracer.find("pass")
        assert span.attrs == {"modules": 4, "tables": 11}


class TestSpanErrors:
    def test_span_survives_exception(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        # Both spans closed, error type recorded, stack unwound.
        assert tracer._stack == []
        outer = tracer.find("outer")
        inner = tracer.find("inner")
        assert outer.error == "ValueError"
        assert inner.error == "ValueError"
        assert inner.duration > 0.0

    def test_tracer_usable_after_exception(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("failed"):
                raise RuntimeError
        with tracer.span("next"):
            pass
        # "next" is a sibling root, not a child of the failed span.
        assert [r.name for r in tracer.roots] == ["failed", "next"]


class TestDisabledTracer:
    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("anything", size=1) as sp:
            sp.set(more=2)
        assert tracer.roots == []
        assert tracer.spans() == []

    def test_disabled_yields_shared_null_span(self):
        tracer = Tracer(enabled=False)
        with tracer.span("a") as sa:
            pass
        with tracer.span("b") as sb:
            pass
        assert sa is sb is _NULL_SPAN
        assert _NULL_SPAN.attrs == {}

    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False


class TestRendering:
    def test_to_dict_round_trip_shape(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", n=1):
            with tracer.span("inner"):
                pass
        (d,) = tracer.to_dicts()
        assert d["name"] == "outer"
        assert d["attrs"] == {"n": 1}
        assert d["children"][0]["name"] == "inner"
        assert d["duration_ms"] >= d["children"][0]["duration_ms"]

    def test_render_table(self):
        tracer = Tracer(enabled=True)
        with tracer.span("frontend", module="eth.up4"):
            with tracer.span("frontend.check"):
                pass
        table = tracer.render_table()
        assert "pass" in table and "wall(ms)" in table
        assert "  frontend.check" in table  # indented under its parent
        assert "module=eth.up4" in table
        assert table.splitlines()[-1].startswith("total")

    def test_render_empty(self):
        assert Tracer(enabled=True).render_table() == "(no spans recorded)"

    def test_clear(self):
        tracer = Tracer(enabled=True)
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.roots == []
