"""Tests of the metrics registry."""

import json

from repro.obs.metrics import METRICS, MetricsRegistry, collecting


class TestRegistry:
    def test_counters(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("frontend.tokens", 10)
        reg.inc("frontend.tokens", 5)
        reg.inc("linker.instances_resolved")
        assert reg.counter("frontend.tokens") == 15
        assert reg.counter("linker.instances_resolved") == 1
        assert reg.counter("missing") == 0

    def test_gauges(self):
        reg = MetricsRegistry(enabled=True)
        reg.set_gauge("tna.schedule.stages_used", 5)
        reg.set_gauge("tna.schedule.stages_used", 7)
        assert reg.gauge("tna.schedule.stages_used") == 7
        assert reg.gauge("missing") is None

    def test_histograms(self):
        reg = MetricsRegistry(enabled=True)
        for v in (4, 2, 9, 1):
            reg.observe("tna.schedule.stage_occupancy", v)
        hist = reg.histogram("tna.schedule.stage_occupancy")
        # log2 buckets [2^(e-1), 2^e): 1 -> e1, 2 -> e2, 4 -> e3, 9 -> e4
        assert hist == {
            "count": 4, "sum": 16, "min": 1, "max": 9,
            "buckets": {"1": 1, "2": 1, "3": 1, "4": 1},
        }
        assert reg.histogram("missing") is None

    def test_keys_and_len(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("a.counter")
        reg.set_gauge("b.gauge", 1.0)
        reg.observe("c.hist", 2.0)
        assert reg.keys() == ["a.counter", "b.gauge", "c.hist"]
        assert len(reg) == 3


class TestDisabled:
    def test_disabled_by_default(self):
        reg = MetricsRegistry()
        assert reg.enabled is False

    def test_disabled_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("a")
        reg.set_gauge("b", 1)
        reg.observe("c", 2)
        assert len(reg) == 0

    def test_global_registry_disabled_by_default(self):
        # Compiling anything without opting in must leave the process
        # registry untouched.
        assert METRICS.enabled is False
        before = len(METRICS)
        from repro.lib.catalog import build_pipeline

        build_pipeline("P4")
        assert len(METRICS) == before


class TestJsonRoundTrip:
    def _populated(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("frontend.tokens", 123)
        reg.set_gauge("analysis.extract_length_bytes", 54)
        reg.observe("tna.schedule.stage_occupancy", 3)
        reg.observe("tna.schedule.stage_occupancy", 5)
        return reg

    def test_snapshot_is_json_serializable(self):
        reg = self._populated()
        json.dumps(reg.snapshot())  # must not raise

    def test_round_trip_preserves_everything(self):
        reg = self._populated()
        clone = MetricsRegistry.from_json(reg.to_json())
        assert clone.snapshot() == reg.snapshot()
        assert clone.counter("frontend.tokens") == 123
        assert clone.gauge("analysis.extract_length_bytes") == 54
        assert clone.histogram("tna.schedule.stage_occupancy") == {
            "count": 2, "sum": 8, "min": 3, "max": 5,
            "buckets": {"2": 1, "3": 1},
        }


class TestCollecting:
    def test_collecting_enables_and_restores(self):
        reg = MetricsRegistry(enabled=False)
        with collecting(reg) as active:
            assert active is reg
            assert reg.enabled
            reg.inc("x")
        assert reg.enabled is False
        assert reg.counter("x") == 1  # data survives the context

    def test_collecting_fresh_resets(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("stale")
        with collecting(reg):
            assert reg.counter("stale") == 0

    def test_collecting_not_fresh_accumulates(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("kept")
        with collecting(reg, fresh=False):
            reg.inc("kept")
        assert reg.counter("kept") == 2


class TestMerge:
    @staticmethod
    def _loaded(counters=(), gauges=(), observations=()):
        reg = MetricsRegistry(enabled=True)
        for key, n in counters:
            reg.inc(key, n)
        for key, v in gauges:
            reg.set_gauge(key, v)
        for key, v in observations:
            reg.observe(key, v)
        return reg

    def test_counters_add(self):
        reg = self._loaded(counters=[("a", 3), ("b", 1)])
        reg.merge(self._loaded(counters=[("a", 4), ("c", 2)]).snapshot())
        assert reg.counter("a") == 7
        assert reg.counter("b") == 1
        assert reg.counter("c") == 2

    def test_gauges_take_max(self):
        reg = self._loaded(gauges=[("stages", 5)])
        reg.merge(self._loaded(gauges=[("stages", 3), ("phv", 9)]).snapshot())
        assert reg.gauge("stages") == 5
        assert reg.gauge("phv") == 9

    def test_histograms_fold(self):
        reg = self._loaded(observations=[("lat", 2), ("lat", 8)])
        reg.merge(self._loaded(observations=[("lat", 1), ("lat", 5)]).snapshot())
        assert reg.histogram("lat") == {
            "count": 4, "sum": 16, "min": 1, "max": 8,
            "buckets": {"1": 1, "2": 1, "3": 1, "4": 1},
        }

    def test_merge_is_commutative(self):
        def snaps():
            return [
                self._loaded(
                    counters=[("c", i)],
                    gauges=[("g", float(i))],
                    observations=[("h", i), ("h", 10 - i)],
                ).snapshot()
                for i in (1, 2, 3)
            ]

        forward = MetricsRegistry()
        for snap in snaps():
            forward.merge(snap)
        backward = MetricsRegistry()
        for snap in reversed(snaps()):
            backward.merge(snap)
        assert forward.snapshot() == backward.snapshot()

    def test_merge_works_while_disabled(self):
        reg = MetricsRegistry(enabled=False)
        reg.merge(self._loaded(counters=[("a", 5)]).snapshot())
        assert reg.counter("a") == 5

    def test_merge_into_from_snapshot_round_trip(self):
        base = self._loaded(counters=[("a", 2)], observations=[("h", 4)])
        clone = MetricsRegistry.from_snapshot(base.snapshot())
        clone.merge(base.snapshot())
        assert clone.counter("a") == 4
        assert clone.histogram("h") == {
            "count": 2, "sum": 8, "min": 4, "max": 4, "buckets": {"3": 2},
        }

    def test_merge_returns_self_for_chaining(self):
        reg = MetricsRegistry()
        a = self._loaded(counters=[("a", 1)]).snapshot()
        b = self._loaded(counters=[("a", 1)]).snapshot()
        assert reg.merge(a).merge(b).counter("a") == 2

    def test_merge_empty_snapshot_is_identity(self):
        reg = self._loaded(counters=[("a", 1)], gauges=[("g", 2.0)])
        before = reg.snapshot()
        reg.merge({})
        assert reg.snapshot() == before


class TestCompilerPopulation:
    def test_build_populates_all_layers(self):
        from repro.backend.tna import TnaBackend
        from repro.lib.catalog import build_pipeline

        reg = MetricsRegistry()
        with collecting():
            TnaBackend().compile(build_pipeline("P4"))
            snap = METRICS.snapshot()
        keys = {*snap["counters"], *snap["gauges"], *snap["histograms"]}
        assert len(keys) >= 10
        assert "linker.instances_resolved" in keys
        assert "analysis.extract_length_bytes" in keys
        assert "compose.tables" in keys
        assert "tna.phv.bits_allocated" in keys
        assert "tna.schedule.stages_used" in keys

    def test_interpreter_counters(self):
        from repro.net.packet import Packet
        from repro.lib.catalog import build_pipeline
        from repro.targets.pipeline import PipelineInstance

        inst = PipelineInstance(build_pipeline("P4"))
        with collecting():
            inst.process(Packet(bytes(64)), 1)
            assert METRICS.counter("interp.packets") == 1
            total_lookups = (METRICS.counter("interp.table_hits")
                             + METRICS.counter("interp.table_misses"))
            assert total_lookups == len(inst.interp.table_trace)
