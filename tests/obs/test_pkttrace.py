"""Tests of packet-level interpreter traces."""

from tests.integration.helpers import eth_ipv4, eth_ipv6, make_instance

from repro.obs.pkttrace import PacketTrace


class TestMicroMode:
    def test_trace_matches_table_trace(self):
        inst = make_instance("P4", "micro")
        trace = PacketTrace()
        outputs = inst.process(eth_ipv4(), 1, trace)
        assert outputs, "expected the packet to be forwarded"
        # The MAT hit sequence seen by the trace is exactly the
        # interpreter's own table_trace.
        assert trace.hit_sequence() == inst.interp.table_trace

    def test_trace_records_extract_and_output(self):
        inst = make_instance("P4", "micro")
        trace = PacketTrace()
        (out,) = inst.process(eth_ipv4(), 1, trace)
        extracts = trace.of_kind("extract")
        assert extracts and extracts[0]["source"] == "byte_stack"
        (out_ev,) = trace.of_kind("output")
        assert out_ev["port"] == out.port
        assert out_ev["bytes"] == len(out.packet)

    def test_table_events_carry_match_details(self):
        inst = make_instance("P4", "micro")
        trace = PacketTrace()
        inst.process(eth_ipv4(), 1, trace)
        lpm = [e for e in trace.tables()
               if e["table"].endswith("ipv4_lpm_tbl")]
        assert len(lpm) == 1
        event = lpm[0]
        assert event["hit"] is True
        assert event["action"].endswith("process")
        assert event["entry"] == 0  # first installed entry matched
        assert trace.hits(), "expected at least one hit"

    def test_miss_recorded(self):
        inst = make_instance("P4", "micro")
        trace = PacketTrace()
        inst.process(eth_ipv4(dst="172.16.0.1"), 1, trace)  # no route
        misses = trace.misses()
        assert any(e["table"].endswith("ipv4_lpm_tbl") for e in misses)
        for event in misses:
            assert event["entry"] is None

    def test_render_is_readable(self):
        inst = make_instance("P4", "micro")
        trace = PacketTrace()
        inst.process(eth_ipv4(), 1, trace)
        text = trace.render()
        assert "table" in text and "-> hit" in text and "output" in text


class TestMonolithicMode:
    def test_native_parser_trace(self):
        inst = make_instance("P4", "monolithic")
        trace = PacketTrace()
        outputs = inst.process(eth_ipv4(), 1, trace)
        assert outputs
        states = [e["state"] for e in trace.of_kind("parser_state")]
        assert states[0] == "start"
        extracted = [e["source"] for e in trace.of_kind("extract")]
        assert any(s.endswith(".eth") for s in extracted)
        assert any(s.endswith(".ipv4") for s in extracted)
        emits = [e["header"] for e in trace.of_kind("emit")]
        assert emits, "expected deparser emit events"

    def test_trace_matches_table_trace(self):
        inst = make_instance("P4", "monolithic")
        trace = PacketTrace()
        inst.process(eth_ipv6(), 1, trace)
        assert trace.hit_sequence() == inst.interp.table_trace


class TestDisabledByDefault:
    def test_process_without_trace_records_nothing(self):
        inst = make_instance("P4", "micro")
        inst.process(eth_ipv4(), 1)
        assert inst.interp.ptrace is None

    def test_trace_not_leaked_between_packets(self):
        inst = make_instance("P4", "micro")
        trace = PacketTrace()
        inst.process(eth_ipv4(), 1, trace)
        n = len(trace.events)
        assert inst.interp.ptrace is None  # reset after the traced packet
        inst.process(eth_ipv4(), 1)  # untraced
        assert len(trace.events) == n


class TestProcessTraced:
    def test_process_traced_returns_pair(self):
        inst = make_instance("P4", "micro")
        outputs, trace = inst.process_traced(eth_ipv4(), 1)
        assert outputs
        assert isinstance(trace, PacketTrace)
        assert trace.hit_sequence()


class TestDataplaneTrace:
    def test_inject_traced(self):
        from repro.core.api import build_dataplane, compile_module
        from repro.lib.loader import load_module_source

        mods = {
            name: compile_module(load_module_source(name), f"{name}.up4")
            for name in ("eth", "l3_v4v6", "ipv4", "ipv6")
        }
        dp = build_dataplane(mods["eth"], [mods["l3_v4v6"], mods["ipv4"],
                                           mods["ipv6"]])
        from tests.integration.helpers import ENTRY_SETS

        for table, matches, act_micro, _act_mono, args in ENTRY_SETS["P4"]:
            dp.api.add_entry(table, matches, act_micro, args)
        outputs, trace = dp.inject_traced(eth_ipv4(), 1)
        assert outputs
        assert trace.hit_sequence()
        assert trace.of_kind("output")
