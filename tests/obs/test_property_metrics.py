"""Property tests: snapshot merging is commutative and associative.

The sharded engine and the live telemetry plane both fold per-worker
snapshots in whatever order the queue delivers them, so merge-order
invariance is load-bearing, not cosmetic.  Observation and gauge values
are integers so float sums stay exact under reassociation — the
property under test is merge algebra, not IEEE rounding.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry

#: Fixed pools so generated snapshots collide on keys (the interesting
#: case).  Each gauge key has one policy everywhere, mirroring real
#: usage where a key's policy is part of its contract.
_COUNTER_KEYS = ("switch.packets", "switch.drops.parser-error", "interp.table_hits")
_HIST_KEYS = ("pipeline.latency_us.parse", "switch.latency_us.packet")
_GAUGE_POLICY = {
    "tna.schedule.stages_used": "max",
    "engine.resident_entries": "sum",
    "engine.queue_depth": "last",
}

_counters = st.dictionaries(
    st.sampled_from(_COUNTER_KEYS), st.integers(0, 10_000), max_size=3
)
_gauges = st.dictionaries(
    st.sampled_from(sorted(_GAUGE_POLICY)), st.integers(-50, 50), max_size=3
)
_observations = st.dictionaries(
    st.sampled_from(_HIST_KEYS),
    st.lists(st.integers(-4, 4096), min_size=1, max_size=8),
    max_size=2,
)


@st.composite
def snapshots(draw):
    reg = MetricsRegistry(enabled=True)
    for key, n in draw(_counters).items():
        reg.inc(key, n)
    for key, value in draw(_gauges).items():
        reg.set_gauge(key, value, policy=_GAUGE_POLICY[key])
    for key, values in draw(_observations).items():
        for v in values:
            reg.observe(key, float(v))
    return reg.snapshot()


def _fold(snaps):
    reg = MetricsRegistry()
    for snap in snaps:
        reg.merge(snap)
    return reg.snapshot()


@settings(max_examples=200, deadline=None)
@given(snapshots(), snapshots())
def test_merge_commutative(a, b):
    assert _fold([a, b]) == _fold([b, a])


@settings(max_examples=200, deadline=None)
@given(snapshots(), snapshots(), snapshots())
def test_merge_associative(a, b, c):
    left = MetricsRegistry().merge(_fold([a, b])).merge(c).snapshot()
    right = MetricsRegistry().merge(a).merge(_fold([b, c])).snapshot()
    assert left == right == _fold([a, b, c])


@settings(max_examples=100, deadline=None)
@given(snapshots(), st.lists(snapshots(), min_size=0, max_size=4))
def test_merge_any_permutation(first, rest):
    import itertools

    snaps = [first, *rest]
    baseline = _fold(snaps)
    for perm in itertools.islice(itertools.permutations(snaps), 6):
        assert _fold(perm) == baseline


@settings(max_examples=100, deadline=None)
@given(snapshots(), st.dictionaries(
    st.sampled_from(_COUNTER_KEYS), st.integers(1, 100), min_size=1, max_size=3,
))
def test_worker_reset_prevents_fork_double_count(parent_snap, child_work):
    """A forked worker inherits the parent registry; resetting before it
    records anything means the parent's fold-in adds only the child's
    own work — never the inherited pre-fork counts a second time."""
    parent = MetricsRegistry.from_snapshot(parent_snap)
    child = MetricsRegistry.from_snapshot(parent_snap)  # the fork copy
    child.reset()
    child.enable()
    for key, n in child_work.items():
        child.inc(key, n)
    parent.merge(child.snapshot())
    for key in _COUNTER_KEYS:
        expected = parent_snap.get("counters", {}).get(key, 0) + child_work.get(key, 0)
        assert parent.counter(key) == expected
