"""Tests of the live telemetry plane (repro.obs.telemetry)."""

import io
import json
import urllib.request

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.pkttrace import TRACE_SCHEMA_VERSION, PacketTrace
from repro.obs.telemetry import (
    TELEMETRY_SCHEMA_VERSION,
    FlightRecorder,
    LiveTelemetry,
    StatsServer,
    TraceWriter,
    fetch_snapshot,
    render_prometheus,
    render_stats,
)
from repro.targets.faults import Verdict


def _snap(**counters):
    reg = MetricsRegistry(enabled=True)
    for key, n in counters.items():
        reg.inc(key, n)
    return reg.snapshot()


def _latency_snap(values, key="pipeline.latency_us.parse"):
    reg = MetricsRegistry(enabled=True)
    for v in values:
        reg.observe(key, v)
    return reg.snapshot()


class TestLiveTelemetry:
    def test_publish_and_sources(self):
        live = LiveTelemetry()
        assert len(live) == 0
        assert live.publish("P4", 0, 1, _snap(x=1))
        assert live.publish("P4", 1, 1, _snap(x=2))
        assert live.sources() == [("P4", 0), ("P4", 1)]
        assert len(live) == 2

    def test_stale_epoch_is_ignored(self):
        live = LiveTelemetry()
        assert live.publish("P4", 0, 5, _snap(x=100))
        assert not live.publish("P4", 0, 4, _snap(x=1))
        assert not live.publish("P4", 0, 5, _snap(x=1))
        assert live.merged_registry().counter("x") == 100

    def test_replace_by_epoch_keeps_counters_monotone(self):
        live = LiveTelemetry()
        totals = []
        # Cumulative per-shard snapshots arriving interleaved: the merged
        # counter must never decrease.
        for epoch, (a, b) in enumerate([(10, 5), (20, 5), (20, 30)], 1):
            live.publish("P4", 0, epoch, _snap(n=a))
            live.publish("P4", 1, epoch, _snap(n=b))
            totals.append(live.merged_registry().counter("n"))
        assert totals == sorted(totals)
        assert totals[-1] == 50

    def test_merged_view_sums_across_shards(self):
        live = LiveTelemetry()
        live.publish("P4", 0, 1, _snap(pkts=7))
        live.publish("P4", 1, 1, _snap(pkts=11))
        live.publish("P7", 0, 1, _snap(pkts=100))
        assert live.merged_registry().counter("pkts") == 118

    def test_snapshot_schema(self):
        live = LiveTelemetry()
        live.publish(
            "P4", 0, 3, _latency_snap([1.0, 2.0, 100.0]),
            ledger={"in": 3, "out": 1}, final=True,
        )
        snap = live.snapshot()
        assert snap["schema"] == TELEMETRY_SCHEMA_VERSION
        assert snap["publishes"] == 1
        [shard] = snap["shards"]
        assert shard == {
            "program": "P4", "shard": 0, "epoch": 3, "final": True,
            "ledger": {"in": 3, "out": 1},
        }
        assert snap["ledger"] == {"in": 3, "out": 1}
        lat = snap["latency_us"]["pipeline.latency_us.parse"]
        assert lat["count"] == 3
        assert 1.0 <= lat["p50"] <= 100.0
        json.dumps(snap)  # must be JSON-able as-is

    def test_snapshot_empty(self):
        snap = LiveTelemetry().snapshot()
        assert snap["shards"] == []
        assert snap["ledger"] == {}
        assert snap["latency_us"] == {}

    def test_new_run_replaces_source_despite_lower_epoch(self):
        # A resident pool reuses the same (program, shard) keys across
        # submits; run 2's epoch 1 must replace run 1's epoch 5, not be
        # dropped as stale.
        live = LiveTelemetry()
        assert live.publish("P4", 0, 5, _snap(x=100), run=1)
        assert not live.publish("P4", 0, 4, _snap(x=1), run=1)
        assert live.publish("P4", 0, 1, _snap(x=7), run=2)
        assert live.merged_registry().counter("x") == 7
        [shard] = live.snapshot()["shards"]
        assert shard["run"] == 2 and shard["epoch"] == 1

    def test_run_key_absent_when_unset(self):
        # Single-run publishers (profile, replay path) omit run; the
        # snapshot schema must not grow a null field for them.
        live = LiveTelemetry()
        live.publish("P4", 0, 1, _snap(x=1))
        [shard] = live.snapshot()["shards"]
        assert "run" not in shard


class TestPrometheus:
    def test_renders_counters_gauges_histograms(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("switch.packets", 9)
        reg.set_gauge("compiled.slots", 12)
        reg.observe("pipeline.latency_us.parse", 3.0)
        reg.observe("pipeline.latency_us.parse", 5.0)
        live = LiveTelemetry()
        live.publish("P4", 0, 1, reg.snapshot())
        text = live.to_prometheus()
        assert "# TYPE repro_switch_packets counter" in text
        assert "repro_switch_packets 9" in text
        assert "repro_compiled_slots 12" in text
        # 3.0 and 5.0 land in [2,4) and [4,8): cumulative le buckets
        assert 'repro_pipeline_latency_us_parse_bucket{le="4"} 1' in text
        assert 'repro_pipeline_latency_us_parse_bucket{le="8"} 2' in text
        assert 'repro_pipeline_latency_us_parse_bucket{le="+Inf"} 2' in text
        assert "repro_pipeline_latency_us_parse_sum 8" in text
        assert "repro_pipeline_latency_us_parse_count 2" in text
        assert 'repro_shard_epoch{program="P4",shard="0"} 1' in text

    def test_bare_registry_snapshot_renders(self):
        text = render_prometheus(_snap(a=1))
        assert "repro_a 1" in text


class TestStatsServer:
    def test_serves_json_and_prometheus(self):
        live = LiveTelemetry()
        live.publish("P4", 0, 1, _snap(x=42), ledger={"in": 10})
        with StatsServer(live, port=0) as server:
            with urllib.request.urlopen(f"{server.url}/stats.json") as resp:
                assert resp.headers["Content-Type"] == "application/json"
                snap = json.loads(resp.read().decode())
            assert snap["metrics"]["counters"]["x"] == 42
            assert snap["ledger"] == {"in": 10}
            with urllib.request.urlopen(f"{server.url}/metrics") as resp:
                text = resp.read().decode()
            assert "repro_x 42" in text
            with urllib.request.urlopen(f"{server.url}/healthz") as resp:
                assert resp.read() == b"ok\n"

    def test_unknown_path_404(self):
        with StatsServer(LiveTelemetry(), port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{server.url}/nope")
            assert err.value.code == 404

    def test_rolling_view_visible_between_requests(self):
        live = LiveTelemetry()
        with StatsServer(live, port=0) as server:
            live.publish("P4", 0, 1, _snap(n=1))
            first = fetch_snapshot(str(server.port))
            live.publish("P4", 0, 2, _snap(n=5))
            second = fetch_snapshot(str(server.port))
        assert first["metrics"]["counters"]["n"] == 1
        assert second["metrics"]["counters"]["n"] == 5


class TestFlightRecorder:
    @staticmethod
    def _verdict(kind="emit", outputs=(), reasons=None, error=None):
        v = Verdict(outputs=list(outputs), reasons=dict(reasons or {}), units=1)
        v.error = error
        return v

    def test_ring_is_bounded(self):
        rec = FlightRecorder(capacity=3)
        for i in range(10):
            rec.record(i, self._verdict())
        assert len(rec) == 3
        assert [e["packet"] for e in rec.dump()] == [7, 8, 9]

    def test_dump_shape(self):
        rec = FlightRecorder(capacity=8, shard=2)
        rec.record(5, self._verdict(reasons={"parser-error": 1}, error="boom"))
        rec.note(6, "uncaught", "ValueError: nope")
        entries = rec.dump()
        assert entries[0]["packet"] == 5
        assert entries[0]["shard"] == 2
        assert entries[0]["reasons"] == {"parser-error": 1}
        assert entries[0]["error"] == "boom"
        assert entries[1] == {
            "packet": 6, "kind": "uncaught", "emits": 0, "units": 0,
            "shard": 2, "error": "ValueError: nope",
        }
        json.dumps(entries)

    def test_capacity_zero_disables(self):
        rec = FlightRecorder(capacity=0)
        rec.record(1, self._verdict())
        rec.note(2, "x", "y")
        assert len(rec) == 0
        assert rec.dump() == []

    def test_trace_attached(self):
        rec = FlightRecorder(capacity=4)
        trace = PacketTrace()
        trace.drop("parser-error")
        rec.record(0, self._verdict(kind="drop"), trace)
        [entry] = rec.dump()
        assert entry["trace"]["events"][0]["kind"] == "drop"


class TestTraceWriter:
    def test_writes_schema_versioned_jsonl(self):
        buf = io.StringIO()
        writer = TraceWriter(buf)
        trace = PacketTrace()
        trace.extract("eth", 14)
        writer.write(trace, 0, program="P4", verdict="emit")
        trace2 = PacketTrace()
        trace2.drop("parser-error")
        writer.write(trace2, 1, program="P4", verdict="drop")
        writer.close()
        lines = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert writer.lines == 2
        assert lines[0]["schema"] == TELEMETRY_SCHEMA_VERSION
        assert lines[0]["packet"] == 0
        assert lines[0]["program"] == "P4"
        assert lines[0]["verdict"] == "emit"
        assert lines[0]["events"][0]["kind"] == "extract"
        assert lines[1]["verdict"] == "drop"

    def test_file_destination(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceWriter(str(path)) as writer:
            trace = PacketTrace()
            trace.drop("x")
            writer.write(trace, 7)
        [line] = path.read_text().splitlines()
        assert json.loads(line)["packet"] == 7

    def test_pkttrace_to_json_line(self):
        trace = PacketTrace()
        trace.extract("eth", 14)
        record = json.loads(trace.to_json_line(index=3, program="P7"))
        assert record["schema"] == TRACE_SCHEMA_VERSION
        assert record["packet"] == 3
        assert record["program"] == "P7"


class TestReaders:
    def test_fetch_snapshot_from_file(self, tmp_path):
        live = LiveTelemetry()
        live.publish("P4", 0, 1, _snap(x=1))
        path = tmp_path / "snap.json"
        path.write_text(live.to_json())
        snap = fetch_snapshot(str(path))
        assert snap["metrics"]["counters"]["x"] == 1

    def test_render_stats_text(self):
        live = LiveTelemetry()
        live.publish(
            "P4", 0, 2, _latency_snap([4.0, 8.0]),
            ledger={"in": 2, "out": 1, "dropped": 1, "killed": 0},
        )
        text = render_stats(live.snapshot())
        assert "P4/shard0 epoch=2" in text
        assert "in=2 out=1 dropped=1" in text
        assert "pipeline.latency_us.parse" in text


class TestQuantiles:
    def test_quantiles_bracket_the_samples(self):
        reg = MetricsRegistry(enabled=True)
        for v in [1.0] * 90 + [1000.0] * 10:
            reg.observe("lat", v)
        assert reg.quantile("lat", 0.5) <= 2.0
        assert reg.quantile("lat", 0.99) >= 512.0
        qs = reg.quantiles("lat")
        assert set(qs) == {"p50", "p95", "p99"}

    def test_quantile_clamps_to_min_max(self):
        reg = MetricsRegistry(enabled=True)
        reg.observe("lat", 3.0)
        assert reg.quantile("lat", 0.0) == 3.0
        assert reg.quantile("lat", 1.0) == 3.0

    def test_nonpositive_values_bucketed(self):
        reg = MetricsRegistry(enabled=True)
        reg.observe("lat", 0.0)
        reg.observe("lat", -2.0)
        hist = reg.histogram("lat")
        assert hist["count"] == 2
        assert reg.quantile("lat", 0.5) == -2.0

    def test_quantile_missing_key(self):
        reg = MetricsRegistry(enabled=True)
        assert reg.quantile("missing", 0.5) is None
        assert reg.quantiles("missing") is None


class TestGaugePolicies:
    def test_sum_policy_adds(self):
        a = MetricsRegistry(enabled=True)
        a.set_gauge("entries", 10, policy="sum")
        b = MetricsRegistry(enabled=True)
        b.set_gauge("entries", 7, policy="sum")
        merged = MetricsRegistry().merge(a.snapshot()).merge(b.snapshot())
        assert merged.gauge("entries") == 17

    def test_last_policy_latest_seq_wins(self):
        a = MetricsRegistry(enabled=True)
        a.set_gauge("depth", 5, policy="last")
        a.set_gauge("depth", 2, policy="last")  # seq 2, value 2
        b = MetricsRegistry(enabled=True)
        b.set_gauge("depth", 9, policy="last")  # seq 1, value 9
        fwd = MetricsRegistry().merge(a.snapshot()).merge(b.snapshot())
        rev = MetricsRegistry().merge(b.snapshot()).merge(a.snapshot())
        assert fwd.gauge("depth") == rev.gauge("depth") == 2

    def test_default_max_keeps_old_schema(self):
        reg = MetricsRegistry(enabled=True)
        reg.set_gauge("stages", 5)
        assert "gauge_meta" not in reg.snapshot()
        assert reg.gauge_policy("stages") == "max"

    def test_unknown_policy_raises(self):
        reg = MetricsRegistry(enabled=True)
        with pytest.raises(ValueError):
            reg.set_gauge("g", 1, policy="average")
