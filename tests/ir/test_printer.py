"""Printer tests: rendered IR must re-parse and re-check (round-trip).

The backends emit generated programs through the printer, so its output
being valid input for our own frontend is what makes the generated code
inspectable and testable.
"""

import pytest

from repro.frontend.typecheck import check_program
from repro.ir.printer import expr_text, print_decl, print_program, print_stmt
from repro.lib.loader import list_sources, load_module_source


class TestRoundTrip:
    @pytest.mark.parametrize("name", list_sources("modules"))
    def test_library_modules_roundtrip(self, name):
        module = check_program(load_module_source(name), name)
        rendered = print_program(module.source)
        reparsed = check_program(rendered, f"{name}-roundtrip")
        assert set(reparsed.programs) == set(module.programs)

    @pytest.mark.parametrize("name", list_sources("monolithic"))
    def test_monolithic_roundtrip(self, name):
        module = check_program(load_module_source(name, "monolithic"), name)
        rendered = print_program(module.source)
        reparsed = check_program(rendered, f"{name}-roundtrip")
        assert reparsed.main == module.main

    def test_double_print_stable(self):
        module = check_program(load_module_source("ipv4"), "ipv4")
        once = print_program(module.source)
        twice = print_program(check_program(once, "x").source)
        assert once == twice


class TestExprText:
    def cases(self):
        module = check_program(
            """
            header h_h { bit<8> a; bit<8> b; }
            struct s_t { h_h h; }
            program T : implements Unicast<> {
              parser P(extractor ex, pkt p, out s_t h) {
                state start { transition accept; }
              }
              control C(pkt p, inout s_t h, im_t im) {
                apply {
                  bit<16> x;
                  x = (h.h.a ++ h.h.b);
                  x = x + 1;
                  if (h.h.isValid() && !(x == 0)) { x = x[15:8] ++ 8w0; }
                }
              }
              control D(emitter em, pkt p, in s_t h) { apply { } }
            }
            """,
            "t",
        )
        return module.programs["T"].control.apply_body

    def test_concat_and_slice(self):
        body = self.cases()
        texts = [print_stmt(s) for s in body.stmts]
        joined = "".join(texts)
        assert "(h.h.a ++ h.h.b)" in joined
        assert "x[15:8]" in joined
        assert "h.h.isValid()" in joined


class TestGeneratedCode:
    def test_synthesized_table_prints(self):
        from repro.lib.catalog import build_pipeline

        composed = build_pipeline("P4")
        table = composed.tables["main_parser_tbl"]
        text = print_decl(table)
        assert "const entries" in text
        assert "upa_bs_len" in text

    def test_synthesized_action_prints(self):
        from repro.lib.catalog import build_pipeline

        composed = build_pipeline("P4")
        name = next(a for a in composed.actions if a.startswith("cp_main"))
        text = print_decl(composed.actions[name])
        assert "upa_bs.b" in text
