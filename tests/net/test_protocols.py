"""Unit tests for the per-protocol codecs and the builder/dissector."""

import pytest

from repro.net.build import PacketBuilder, dissect, layer_fields
from repro.net.ethernet import ETHERNET, ETHERTYPE_IPV4, ETHERTYPE_IPV6, mac, mac_str
from repro.net.ipv4 import IPV4, ip4, ip4_str
from repro.net.ipv6 import IPV6, NEXT_HDR_ROUTING, NEXT_HDR_TCP, ip6, ip6_str
from repro.net.mpls import MPLS, label_stack
from repro.net.srv6 import SRH_BASE, srh, srh_bytes
from repro.net.tcp import TCP
from repro.net.udp import UDP
from repro.net.vlan import VLAN
from repro.net.gre import GRE
from repro.net.icmp import ICMP, icmp_echo


class TestAddressParsing:
    def test_mac_roundtrip(self):
        assert mac_str(mac("aa:bb:cc:dd:ee:ff")) == "aa:bb:cc:dd:ee:ff"

    def test_mac_bad(self):
        with pytest.raises(ValueError):
            mac("aa:bb")

    def test_ip4_roundtrip(self):
        assert ip4_str(ip4("192.168.1.200")) == "192.168.1.200"
        assert ip4("0.0.0.1") == 1

    def test_ip4_bad(self):
        with pytest.raises(ValueError):
            ip4("1.2.3")

    def test_ip6_roundtrip(self):
        assert ip6_str(ip6("2001:db8::1")) == "2001:db8::1"
        assert ip6("::1") == 1


class TestHeaderWidths:
    @pytest.mark.parametrize(
        "codec,width",
        [
            (ETHERNET, 14),
            (VLAN, 4),
            (MPLS, 4),
            (IPV4, 20),
            (IPV6, 40),
            (SRH_BASE, 8),
            (TCP, 20),
            (UDP, 8),
            (GRE, 4),
            (ICMP, 8),
        ],
    )
    def test_wire_widths(self, codec, width):
        assert codec.byte_width == width


class TestMpls:
    def test_label_stack_bottom_marked(self):
        stack = label_stack([100, 200, 300])
        assert [e["bos"] for e in stack] == [0, 0, 1]

    def test_empty_stack(self):
        assert label_stack([]) == []


class TestSrh:
    def test_hdr_ext_len(self):
        base, segs = srh(["2001:db8::1", "2001:db8::2"], NEXT_HDR_TCP, 1)
        assert base["hdrExtLen"] == 4
        assert base["lastEntry"] == 1
        assert len(segs) == 2

    def test_segments_left_bounds(self):
        with pytest.raises(ValueError):
            srh(["2001:db8::1"], NEXT_HDR_TCP, segments_left=1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            srh([], NEXT_HDR_TCP, 0)

    def test_bytes_length(self):
        data = srh_bytes(["2001:db8::1", "2001:db8::2"], NEXT_HDR_TCP, 1)
        assert len(data) == 8 + 32


class TestBuilderDissector:
    def test_eth_ipv4_tcp_roundtrip(self):
        pkt = (
            PacketBuilder()
            .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", ETHERTYPE_IPV4)
            .ipv4("10.0.0.1", "10.0.0.2", 6, payload_len=20)
            .tcp(1234, 80)
            .payload(b"")
            .build()
        )
        assert len(pkt) == 14 + 20 + 20
        layers = dissect(pkt)
        names = [n for n, _ in layers]
        assert names == ["ethernet", "ipv4", "tcp"]
        assert layer_fields(layers, "ipv4")["dstAddr"] == ip4("10.0.0.2")
        assert layer_fields(layers, "tcp")["dstPort"] == 80

    def test_eth_ipv6_srh(self):
        srh_data = srh_bytes(["2001:db8::9", "2001:db8::8"], NEXT_HDR_TCP, 1)
        pkt = (
            PacketBuilder()
            .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", ETHERTYPE_IPV6)
            .ipv6("2001:db8::1", "2001:db8::9", NEXT_HDR_ROUTING, payload_len=len(srh_data))
            .payload(srh_data)
            .build()
        )
        layers = dissect(pkt)
        names = [n for n, _ in layers]
        assert names[:3] == ["ethernet", "ipv6", "srh"]
        assert names.count("srh_segment") == 2

    def test_mpls_chain(self):
        pkt = (
            PacketBuilder()
            .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x8847)
            .mpls(16, bos=0)
            .mpls(17, bos=1)
            .ipv4("10.0.0.1", "10.0.0.2", 17)
            .udp(53, 53)
            .build()
        )
        names = [n for n, _ in dissect(pkt)]
        assert names == ["ethernet", "mpls", "mpls", "ipv4", "udp"]

    def test_payload_remainder(self):
        pkt = (
            PacketBuilder()
            .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x9999)
            .payload(b"opaque")
            .build()
        )
        layers = dissect(pkt)
        assert layers[-1][0] == "payload"
        assert layers[-1][1]["raw"] == b"opaque"

    def test_unknown_layer_rejected(self):
        with pytest.raises(KeyError):
            PacketBuilder().layer("quic", {})

    def test_layer_fields_missing(self):
        with pytest.raises(KeyError):
            layer_fields([], "ipv4")

    def test_icmp(self):
        fields = icmp_echo(7, 9)
        assert fields["type"] == 8
        assert ICMP.decode(ICMP.encode(fields))["identifier"] == 7
