"""Unit tests for repro.net.checksum."""

from hypothesis import given
from hypothesis import strategies as st

from repro.net.checksum import (
    incremental_update,
    internet_checksum,
    ipv4_header_checksum,
    pseudo_header_v4,
    pseudo_header_v6,
)
from repro.net.ipv4 import IPV4, ipv4


class TestInternetChecksum:
    def test_known_vector(self):
        # RFC 1071 worked example.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_zero_data(self):
        assert internet_checksum(b"\x00\x00") == 0xFFFF

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x12") == internet_checksum(b"\x12\x00")

    @given(st.binary(min_size=2, max_size=128).filter(lambda b: len(b) % 2 == 0))
    def test_verification_property(self, data):
        # Appending the checksum makes the total sum verify to zero.
        csum = internet_checksum(data)
        assert internet_checksum(data + csum.to_bytes(2, "big")) == 0


class TestIPv4Checksum:
    def test_builder_produces_valid_checksum(self):
        hdr = IPV4.encode(ipv4("192.168.0.1", "10.0.0.1", 6, payload_len=20))
        assert internet_checksum(hdr) == 0

    def test_recompute_matches(self):
        fields = ipv4("1.2.3.4", "5.6.7.8", 17)
        hdr = IPV4.encode(fields)
        assert ipv4_header_checksum(hdr) == fields["hdrChecksum"]


class TestIncrementalUpdate:
    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    def test_matches_full_recompute(self, old_word, new_word):
        data = bytearray(b"\x11\x22\x33\x44") + old_word.to_bytes(2, "big")
        old_csum = internet_checksum(bytes(data))
        data[4:6] = new_word.to_bytes(2, "big")
        assert incremental_update(old_csum, old_word, new_word) == internet_checksum(
            bytes(data)
        )


class TestPseudoHeaders:
    def test_v4_layout(self):
        ph = pseudo_header_v4(0x01020304, 0x05060708, 6, 20)
        assert ph == bytes.fromhex("0102030405060708") + b"\x00\x06\x00\x14"

    def test_v6_length(self):
        assert len(pseudo_header_v6(1, 2, 6, 20)) == 40
