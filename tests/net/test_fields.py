"""Unit tests for repro.net.fields."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.fields import Field, FieldError, HeaderCodec

SIMPLE = HeaderCodec("simple_t", [("a", 4), ("b", 4), ("c", 16)])


class TestLayout:
    def test_widths(self):
        assert SIMPLE.bit_width == 24
        assert SIMPLE.byte_width == 3

    def test_field_names(self):
        assert SIMPLE.field_names() == ["a", "b", "c"]

    def test_offsets(self):
        assert SIMPLE.bit_offset_of("a") == 0
        assert SIMPLE.bit_offset_of("b") == 4
        assert SIMPLE.bit_offset_of("c") == 8

    def test_byte_range(self):
        assert SIMPLE.byte_range_of("a") == (0, 1)
        assert SIMPLE.byte_range_of("b") == (0, 1)
        assert SIMPLE.byte_range_of("c") == (1, 3)

    def test_non_byte_aligned_rejected(self):
        with pytest.raises(FieldError):
            HeaderCodec("bad", [("x", 3)])

    def test_duplicate_field_rejected(self):
        with pytest.raises(FieldError):
            HeaderCodec("bad", [("x", 4), ("x", 4)])

    def test_empty_rejected(self):
        with pytest.raises(FieldError):
            HeaderCodec("bad", [])

    def test_zero_width_rejected(self):
        with pytest.raises(FieldError):
            Field("x", 0)


class TestEncodeDecode:
    def test_encode_msb_first(self):
        data = SIMPLE.encode({"a": 0xA, "b": 0xB, "c": 0x1234})
        assert data == b"\xab\x12\x34"

    def test_decode(self):
        assert SIMPLE.decode(b"\xab\x12\x34") == {"a": 0xA, "b": 0xB, "c": 0x1234}

    def test_missing_fields_default_zero(self):
        assert SIMPLE.encode({"c": 1}) == b"\x00\x00\x01"

    def test_unknown_field_rejected(self):
        with pytest.raises(FieldError):
            SIMPLE.encode({"nope": 1})

    def test_value_out_of_range(self):
        with pytest.raises(FieldError):
            SIMPLE.encode({"a": 16})

    def test_decode_short_buffer(self):
        with pytest.raises(FieldError):
            SIMPLE.decode(b"\x00")

    def test_get_set_single_field(self):
        data = SIMPLE.encode({"a": 1, "b": 2, "c": 3})
        assert SIMPLE.get(data, "b") == 2
        updated = SIMPLE.set(data, "b", 7)
        assert SIMPLE.get(updated, "b") == 7
        assert SIMPLE.get(updated, "a") == 1
        assert SIMPLE.get(updated, "c") == 3

    def test_set_preserves_tail_bytes(self):
        data = SIMPLE.encode({"a": 1}) + b"tail"
        assert SIMPLE.set(data, "a", 2).endswith(b"tail")


@given(
    st.integers(0, 15),
    st.integers(0, 15),
    st.integers(0, 0xFFFF),
)
def test_roundtrip_property(a, b, c):
    values = {"a": a, "b": b, "c": c}
    assert SIMPLE.decode(SIMPLE.encode(values)) == values


@given(st.lists(st.integers(1, 4), min_size=1, max_size=8))
def test_random_layout_roundtrip(widths):
    # Make the layout byte aligned by padding.
    total = sum(w * 8 for w in widths)
    fields = [(f"f{i}", w * 8) for i, w in enumerate(widths)]
    codec = HeaderCodec("rand_t", fields)
    assert codec.bit_width == total
    values = {f"f{i}": (1 << (w * 8)) - 1 for i, w in enumerate(widths)}
    assert codec.decode(codec.encode(values)) == values
