"""Property tests for the RFC 1071/1624 checksum helpers.

Complements the unit vectors in ``test_checksum.py`` with the algebraic
properties a NAT dataplane actually relies on:

* odd-length inputs checksum identically to their zero-padded form
  (RFC 1071 padding rule);
* carry wrap-around at 0xffff folds correctly, however many carries
  stack up;
* word order is irrelevant (one's-complement addition commutes);
* verification: appending a message's checksum makes the whole sum
  verify to zero;
* :func:`incremental_update` (RFC 1624 Eqn 3) agrees with a full
  recompute for every single-word rewrite — except the documented -0
  ambiguity when the rewritten data sums to zero, which is pinned as a
  unit test below rather than papered over.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.net.checksum import incremental_update, internet_checksum

words = st.integers(0, 0xFFFF)
payloads = st.binary(min_size=0, max_size=64)


def pad(data: bytes) -> bytes:
    return data + b"\x00" if len(data) % 2 else data


@settings(max_examples=200, deadline=None)
@given(data=payloads)
def test_checksum_is_16_bits(data):
    assert 0 <= internet_checksum(data) <= 0xFFFF


@settings(max_examples=200, deadline=None)
@given(data=st.binary(min_size=1, max_size=63).filter(lambda d: len(d) % 2))
def test_odd_length_equals_zero_padded(data):
    """RFC 1071: odd-length data is summed as if zero-padded."""
    assert internet_checksum(data) == internet_checksum(data + b"\x00")


@settings(max_examples=200, deadline=None)
@given(n=st.integers(1, 512))
def test_carry_wraparound_at_ffff(n):
    """n words of 0xffff sum to 0xffff however many carries fold: each
    0xffff is -0 in one's complement, so the total stays -0 and the
    final complement is 0."""
    assert internet_checksum(b"\xff\xff" * n) == 0x0000


@settings(max_examples=200, deadline=None)
@given(data=payloads, seed=st.integers(0, 2**32 - 1))
def test_word_order_is_irrelevant(data, seed):
    """One's-complement addition commutes, so shuffling the 16-bit
    words of a message never changes its checksum."""
    import random

    data = pad(data)
    word_list = [data[i : i + 2] for i in range(0, len(data), 2)]
    random.Random(seed).shuffle(word_list)
    assert internet_checksum(b"".join(word_list)) == internet_checksum(data)


@settings(max_examples=200, deadline=None)
@given(data=payloads)
def test_appending_checksum_verifies_to_zero(data):
    """The receiver-side check: sum(message + checksum) == 0."""
    data = pad(data)
    csum = internet_checksum(data)
    assert internet_checksum(data + csum.to_bytes(2, "big")) == 0


@settings(max_examples=300, deadline=None)
@given(
    data=st.binary(min_size=2, max_size=64).map(pad),
    position=st.integers(0, 31),
    new_word=words,
)
def test_incremental_update_matches_full_recompute(data, position, new_word):
    """Rewriting one aligned 16-bit word: RFC 1624 Eqn 3 must agree
    with recomputing the checksum from scratch.

    The all-zero result is excluded: when the updated message sums to
    zero the two legitimately differ (-0 vs +0; see the pinned unit
    test below), and no word-local update rule can tell them apart.
    """
    offset = (position * 2) % len(data)
    old_word = int.from_bytes(data[offset : offset + 2], "big")
    updated = (
        data[:offset] + new_word.to_bytes(2, "big") + data[offset + 2 :]
    )
    assume(any(updated))
    old_csum = internet_checksum(data)
    assert incremental_update(old_csum, old_word, new_word) == (
        internet_checksum(updated)
    )


@settings(max_examples=200, deadline=None)
@given(
    data=st.binary(min_size=4, max_size=64).map(pad),
    first=words,
    second=words,
)
def test_incremental_updates_compose(data, first, second):
    """Two successive single-word updates equal doing them in one pass
    over the final message."""
    updated = (
        first.to_bytes(2, "big")
        + second.to_bytes(2, "big")
        + data[4:]
    )
    assume(any(updated))
    csum = internet_checksum(data)
    csum = incremental_update(csum, int.from_bytes(data[0:2], "big"), first)
    csum = incremental_update(csum, int.from_bytes(data[2:4], "big"), second)
    assert csum == internet_checksum(updated)


@settings(max_examples=200, deadline=None)
@given(data=st.binary(min_size=2, max_size=64).map(pad), position=st.integers(0, 31))
def test_incremental_noop_update_is_identity(data, position):
    """Rewriting a word to its own value never changes the checksum
    (modulo the same -0 corner: an all-zero message's 0xffff checksum
    normalizes to the 0x0000 representation through Eqn 3)."""
    assume(any(data))
    offset = (position * 2) % len(data)
    word = int.from_bytes(data[offset : offset + 2], "big")
    csum = internet_checksum(data)
    assert incremental_update(csum, word, word) == csum


def test_documented_negative_zero_divergence():
    """The one input class where RFC 1624 Eqn 3 and a full recompute
    legitimately disagree: an updated message that sums to zero.

    Eqn 3 computes over one's-complement sums, where the all-zero
    message is -0 (0xffff as a sum, 0x0000 as a stored checksum), while
    a from-scratch RFC 1071 recompute of all-zero bytes yields +0
    stored as 0xffff.  Both checksums *verify* correctly; they are
    simply different representations of zero.
    """
    data = b"\x12\x34\x00\x00"
    old = internet_checksum(data)
    assert old == 0xEDCB
    # Rewrite the first word 0x1234 -> 0x0000: the message is now all
    # zeros.
    assert incremental_update(old, 0x1234, 0x0000) == 0x0000
    assert internet_checksum(b"\x00\x00\x00\x00") == 0xFFFF
    # Only the +0 (0xffff) form passes the sum-to-zero receiver check —
    # the reason protocols like UDP reserve the 0x0000 encoding.
    assert internet_checksum(b"\x00\x00\x00\x00" + b"\xff\xff") == 0
    assert internet_checksum(b"\x00\x00\x00\x00" + b"\x00\x00") != 0
