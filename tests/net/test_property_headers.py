"""Property tests over the header codecs: never-crash and round-trip.

Robustness complement to the unit tests in ``test_fields.py`` /
``test_protocols.py``: hypothesis feeds every registered codec random
short byte strings (decode must either succeed or raise the documented
:class:`FieldError`, never anything else) and random in-range field
values (encode/decode must round-trip exactly).  The dissector gets the
same treatment — arbitrary bytes must dissect without crashing.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.build import _CODECS, codec_for, dissect
from repro.net.fields import FieldError
from repro.net.packet import Packet

LAYERS = sorted(_CODECS)
MAX_WIDTH = max(codec.byte_width for codec in _CODECS.values())


@pytest.mark.parametrize("layer", LAYERS)
@settings(max_examples=60, deadline=None)
@given(data=st.binary(max_size=MAX_WIDTH + 8))
def test_decode_never_crashes(layer, data):
    """decode() on arbitrary short bytes: a dict or FieldError, only."""
    codec = codec_for(layer)
    try:
        fields = codec.decode(data)
    except FieldError:
        # Only legitimate for inputs shorter than the header.
        assert len(data) < codec.byte_width
    else:
        assert set(fields) == set(codec.field_names())
        for name, value in fields.items():
            assert 0 <= value <= (1 << codec.width_of(name)) - 1


@pytest.mark.parametrize("layer", LAYERS)
@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 2**63 - 1))
def test_encode_decode_round_trip(layer, seed):
    """Random in-range values survive encode -> decode unchanged."""
    import random

    codec = codec_for(layer)
    rng = random.Random(seed)
    values = {
        field.name: rng.randrange(field.max_value + 1) for field in codec.fields
    }
    wire = codec.encode(values)
    assert len(wire) == codec.byte_width
    assert codec.decode(wire) == values


@pytest.mark.parametrize("layer", LAYERS)
def test_decode_ignores_trailing_bytes(layer):
    codec = codec_for(layer)
    wire = codec.encode({})
    assert codec.decode(wire + b"\xff" * 7) == codec.decode(wire)


@settings(max_examples=120, deadline=None)
@given(data=st.binary(max_size=128))
def test_dissect_never_crashes(data):
    """The dissector is fed switch output; garbage must not raise."""
    layers = dissect(Packet(data))
    consumed = sum(
        codec_for(name).byte_width
        for name, _ in layers
        if name not in ("payload",)
        # srh_segment is fixed 16 bytes and registered as a codec
    )
    trailing = sum(len(f["raw"]) for n, f in layers if n == "payload")
    assert consumed + trailing <= len(data) or not data


@settings(max_examples=60, deadline=None)
@given(data=st.binary(min_size=1, max_size=64), first=st.sampled_from(LAYERS))
def test_dissect_any_first_layer(data, first):
    dissect(Packet(data), first_layer=first)
