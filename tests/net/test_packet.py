"""Unit tests for repro.net.packet."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.packet import Packet, PacketError


class TestBasics:
    def test_empty(self):
        p = Packet()
        assert len(p) == 0
        assert p.tobytes() == b""

    def test_length_property(self):
        assert Packet(b"abc").length == 3

    def test_read_write(self):
        p = Packet(b"\x00" * 8)
        p.write(2, b"\xaa\xbb")
        assert p.read(2, 2) == b"\xaa\xbb"
        assert p.read(0, 2) == b"\x00\x00"

    def test_read_int_write_int(self):
        p = Packet(b"\x00" * 4)
        p.write_int(0, 4, 0xDEADBEEF)
        assert p.read_int(0, 4) == 0xDEADBEEF
        assert p.read_int(1, 2) == 0xADBE

    def test_write_int_overflow(self):
        p = Packet(b"\x00" * 2)
        with pytest.raises(PacketError):
            p.write_int(0, 2, 0x10000)

    def test_out_of_range_read(self):
        with pytest.raises(PacketError):
            Packet(b"ab").read(1, 5)

    def test_negative_offset(self):
        with pytest.raises(PacketError):
            Packet(b"ab").read(-1, 1)

    def test_equality(self):
        assert Packet(b"xy") == Packet(b"xy")
        assert Packet(b"xy") == b"xy"
        assert Packet(b"xy") != Packet(b"yz")

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Packet(b"a"))

    def test_repr_truncates(self):
        r = repr(Packet(bytes(32)))
        assert "32B" in r and r.endswith("...)")


class TestResize:
    def test_insert_middle(self):
        p = Packet(b"aabb")
        p.insert(2, b"XX")
        assert p.tobytes() == b"aaXXbb"

    def test_insert_at_end(self):
        p = Packet(b"aa")
        p.insert(2, b"bb")
        assert p.tobytes() == b"aabb"

    def test_insert_out_of_range(self):
        with pytest.raises(PacketError):
            Packet(b"aa").insert(3, b"x")

    def test_remove_shifts_up(self):
        p = Packet(b"aaXXbb")
        removed = p.remove(2, 2)
        assert removed == b"XX"
        assert p.tobytes() == b"aabb"

    def test_append_truncate(self):
        p = Packet(b"ab")
        p.append(b"cd")
        assert p.tobytes() == b"abcd"
        p.truncate(1)
        assert p.tobytes() == b"a"

    def test_truncate_out_of_range(self):
        with pytest.raises(PacketError):
            Packet(b"ab").truncate(3)


class TestCopyAndView:
    def test_copy_is_independent(self):
        p = Packet(b"abcd")
        q = p.copy()
        q.write(0, b"Z")
        assert p.tobytes() == b"abcd"
        assert q.tobytes() == b"Zbcd"

    def test_copy_from(self):
        p, q = Packet(b"aa"), Packet(b"bbbb")
        p.copy_from(q)
        assert p.tobytes() == b"bbbb"
        q.write(0, b"X")
        assert p.tobytes() == b"bbbb"

    def test_view_reads_window(self):
        p = Packet(b"headtail")
        v = p.view(4)
        assert v.tobytes() == b"tail"

    def test_view_write_propagates(self):
        p = Packet(b"headtail")
        v = p.view(4)
        v.write(0, b"TAIL")
        assert p.tobytes() == b"headTAIL"

    def test_view_resize_propagates(self):
        p = Packet(b"headtail")
        v = p.view(4)
        v.insert(0, b"mid-")
        assert p.tobytes() == b"headmid-tail"
        v.remove(0, 4)
        assert p.tobytes() == b"headtail"

    def test_nested_views(self):
        p = Packet(b"aabbccdd")
        v1 = p.view(2)
        v2 = v1.view(2)
        v2.write(0, b"XX")
        assert p.tobytes() == b"aabbXXdd"

    def test_hex_roundtrip(self):
        p = Packet(b"\x01\x02\xff")
        assert Packet.from_hex(p.hex()) == p

    def test_split(self):
        assert Packet(b"abcd").split(1) == [b"a", b"bcd"]


class TestProperties:
    @given(st.binary(max_size=64), st.binary(max_size=16), st.integers(0, 64))
    def test_insert_then_remove_roundtrips(self, base, ins, offset):
        p = Packet(base)
        offset = min(offset, len(base))
        p.insert(offset, ins)
        assert p.remove(offset, len(ins)) == ins
        assert p.tobytes() == base

    @given(st.binary(min_size=1, max_size=64))
    def test_copy_equals_original(self, data):
        p = Packet(data)
        assert p.copy() == p

    @given(st.binary(min_size=4, max_size=64), st.integers(0, 3))
    def test_view_matches_slice(self, data, offset):
        p = Packet(data)
        assert p.view(offset).tobytes() == data[offset:]
