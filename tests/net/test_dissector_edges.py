"""Dissector edge cases across protocol chains."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.build import PacketBuilder, codec_for, dissect, layer_fields
from repro.net.packet import Packet
from repro.net.vlan import vlan


class TestChains:
    def test_vlan_then_ipv6(self):
        pkt = (
            PacketBuilder()
            .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x8100)
            .layer("vlan", vlan(5, 0x86DD))
            .ipv6("fd00::1", "fd00::2", 17)
            .udp(1, 2)
            .build()
        )
        names = [n for n, _ in dissect(pkt)]
        assert names == ["ethernet", "vlan", "ipv6", "udp"]

    def test_double_vlan(self):
        pkt = (
            PacketBuilder()
            .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x8100)
            .layer("vlan", vlan(5, 0x8100))
            .layer("vlan", vlan(6, 0x0800))
            .ipv4("1.1.1.1", "2.2.2.2", 6)
            .build()
        )
        names = [n for n, _ in dissect(pkt)]
        assert names[:4] == ["ethernet", "vlan", "vlan", "ipv4"]

    def test_gre_tunnel(self):
        from repro.net.gre import gre

        pkt = (
            PacketBuilder()
            .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x0800)
            .ipv4("1.1.1.1", "2.2.2.2", 47)
            .layer("gre", gre(0x0800))
            .build()
        )
        names = [n for n, _ in dissect(pkt)]
        assert names == ["ethernet", "ipv4", "gre"]

    def test_mpls_over_ipv6_payload(self):
        pkt = (
            PacketBuilder()
            .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x8847)
            .mpls(7, bos=1)
            .ipv6("fd00::1", "fd00::2", 59)
            .build()
        )
        names = [n for n, _ in dissect(pkt)]
        assert names == ["ethernet", "mpls", "ipv6"]

    def test_truncated_mid_header(self):
        full = (
            PacketBuilder()
            .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x0800)
            .ipv4("1.1.1.1", "2.2.2.2", 6)
            .build()
        )
        cut = Packet(full.tobytes()[:20])  # eth + 6 bytes of ipv4
        layers = dissect(cut)
        names = [n for n, _ in layers]
        assert names[0] == "ethernet"
        assert "ipv4" not in names
        assert names[-1] == "payload"

    def test_empty_packet(self):
        assert dissect(Packet(b"")) == []

    def test_first_layer_override(self):
        pkt = PacketBuilder().ipv4("1.1.1.1", "2.2.2.2", 6).tcp(1, 2).build()
        names = [n for n, _ in dissect(pkt, first_layer="ipv4")]
        assert names == ["ipv4", "tcp"]


class TestLayerFields:
    def test_second_occurrence(self):
        pkt = (
            PacketBuilder()
            .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x0800)
            .ipv4("1.1.1.1", "9.9.9.9", 4)
            .ipv4("3.3.3.3", "4.4.4.4", 6)
            .build()
        )
        layers = dissect(pkt)
        from repro.net.ipv4 import ip4

        assert layer_fields(layers, "ipv4", 0)["dstAddr"] == ip4("9.9.9.9")
        assert layer_fields(layers, "ipv4", 1)["dstAddr"] == ip4("4.4.4.4")

    def test_codec_lookup_error(self):
        with pytest.raises(KeyError):
            codec_for("not-a-protocol")


@given(st.binary(min_size=0, max_size=80))
def test_dissector_never_crashes(data):
    """Any byte blob dissects without raising."""
    layers = dissect(Packet(data))
    total = sum(
        codec_for(name).byte_width if name != "payload" else len(fields["raw"])
        for name, fields in layers
    )
    assert total <= len(data) or not layers
