"""Resident worker pool: lifecycle, backpressure, reuse, determinism."""

import multiprocessing
import time

import pytest

from repro.targets.engine import EngineConfig, EngineError, run_sharded_program
from repro.targets.pool import WorkerPool
from repro.targets.soak import SoakConfig


def small_config(**kw) -> SoakConfig:
    defaults = dict(programs=["P4"], packets=400, seed=77, fault_rate=0.05)
    defaults.update(kw)
    return SoakConfig(**defaults)


def no_orphans() -> bool:
    deadline = time.monotonic() + 5
    while multiprocessing.active_children():
        if time.monotonic() > deadline:
            return False
        time.sleep(0.05)
    return True


class TestLifecycle:
    def test_submit_starts_lazily_and_close_reaps(self):
        pool = WorkerPool(EngineConfig(workers=2))
        try:
            block = pool.submit(small_config(), "P4")
            assert block["packets"] == 400 and block["ledger_ok"]
            assert len(multiprocessing.active_children()) >= 2
        finally:
            pool.close()
        assert no_orphans()

    def test_close_unlinks_shared_memory(self):
        from multiprocessing import shared_memory

        pool = WorkerPool(EngineConfig(workers=2))
        pool.start()
        names = [ring.name for ring in pool._rings]
        pool.submit(small_config(), "P4")
        pool.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        assert no_orphans()

    def test_context_manager_tears_down(self):
        with WorkerPool(EngineConfig(workers=2)) as pool:
            block = pool.submit(small_config(), "P4")
            assert block["ingest"] == "dispatch"
        assert no_orphans()

    def test_closed_pool_refuses_submits(self):
        pool = WorkerPool(EngineConfig(workers=2))
        pool.start()
        pool.close()
        with pytest.raises(EngineError):
            pool.submit(small_config(), "P4")

    def test_close_is_idempotent(self):
        pool = WorkerPool(EngineConfig(workers=2))
        pool.start()
        pool.submit(small_config(packets=120), "P4")
        pool.close()
        pool.close()  # second close must be a no-op, not an error
        pool.close()
        assert no_orphans()

    def test_close_before_start_is_safe(self):
        pool = WorkerPool(EngineConfig(workers=2))
        pool.close()  # never started: nothing to tear down
        with pytest.raises(EngineError):
            pool.start()  # and the pool stays closed

    def test_exception_inside_context_still_reaps(self):
        with pytest.raises(RuntimeError):
            with WorkerPool(EngineConfig(workers=2)) as pool:
                pool.submit(small_config(packets=120), "P4")
                raise RuntimeError("simulated parent error")
        assert no_orphans()

    def test_no_shm_leak_on_simulated_parent_error(self):
        # Satellite: abnormal teardown (parent raises mid-session, pool
        # dropped without close()) must not leak /dev/shm segments —
        # the ring finalizers reclaim them when the objects die.
        import gc

        from multiprocessing import shared_memory

        pool = WorkerPool(EngineConfig(workers=2))
        pool.start()
        names = [ring.name for ring in pool._rings]
        try:
            raise RuntimeError("simulated parent error before close()")
        except RuntimeError:
            pass
        # The parent "forgot" close(); dropping the pool (and with it
        # the rings) must still unlink the segments via weakref.finalize.
        for proc in pool._procs.values():
            proc.kill()
            proc.join(timeout=5)
        pool._out_queue.close()
        pool._out_queue.cancel_join_thread()
        del pool
        gc.collect()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        assert no_orphans()


class TestReuse:
    def test_two_submits_reuse_the_same_workers(self):
        with WorkerPool(EngineConfig(workers=2)) as pool:
            pool.start()
            pids = sorted(p.pid for p in pool._procs.values())
            first = pool.submit(small_config(), "P4")
            second = pool.submit(small_config(), "P4")
            assert sorted(p.pid for p in pool._procs.values()) == pids
        # Same config -> bit-identical results; a worker that carried
        # state (registry, fault plan, switch ledger) into run 2 would
        # change counters or the verdict stream.
        assert first["digest"] == second["digest"]
        assert first["packets"] == second["packets"] == 400

    def test_second_run_registry_and_ledger_start_clean(self):
        with WorkerPool(EngineConfig(workers=2)) as pool:
            first = pool.submit(small_config(), "P4")
            second = pool.submit(small_config(), "P4")
        # Cumulative leakage across runs would double every counter.
        assert second["metrics"]["counters"] == first["metrics"]["counters"]
        assert second["units"] == first["units"]
        for one, two in zip(first["shards"], second["shards"]):
            assert one["packets"] == two["packets"]
            assert one["digest"] == two["digest"]

    def test_distinct_programs_on_one_pool(self):
        with WorkerPool(EngineConfig(workers=2)) as pool:
            p4 = pool.submit(small_config(), "P4")
            p7 = pool.submit(small_config(), "P7")
        assert p4["ledger_ok"] and p7["ledger_ok"]
        assert p4["digest"] != p7["digest"]


class TestBackpressure:
    def test_tiny_ring_blocks_parent_but_loses_nothing(self):
        # A ring far smaller than the stream forces the parent to block
        # on backpressure many times; exact packet accounting proves
        # nothing was dropped or duplicated while blocked.
        engine = EngineConfig(workers=2, ring_bytes=2048)
        with WorkerPool(engine) as pool:
            block = pool.submit(small_config(packets=1500), "P4")
        assert block["packets"] == 1500
        assert sum(s["packets"] for s in block["shards"]) == 1500
        assert block["ledger_ok"] and not block["uncaught"]

    def test_tiny_ring_digest_matches_default_ring(self):
        reference = run_sharded_program(
            small_config(), "P4", EngineConfig(workers=2, ingest="replay")
        )
        with WorkerPool(EngineConfig(workers=2, ring_bytes=2048)) as pool:
            block = pool.submit(small_config(), "P4")
        assert block["digest"] == reference["digest"]


class TestDeterminism:
    @pytest.mark.parametrize("exec_backend", ["interp", "compiled"])
    def test_dispatch_matches_replay_digest(self, exec_backend):
        config = small_config(exec_backend=exec_backend)
        replay = run_sharded_program(
            config, "P4", EngineConfig(workers=2, ingest="replay")
        )
        dispatch = run_sharded_program(
            config, "P4", EngineConfig(workers=2, ingest="dispatch")
        )
        assert dispatch["digest"] == replay["digest"]
        assert dispatch["verdicts"] == replay["verdicts"]
        assert dispatch["drops_by_reason"] == replay["drops_by_reason"]
        for a, b in zip(dispatch["shards"], replay["shards"]):
            assert a["digest"] == b["digest"]
            assert a["packets"] == b["packets"]

    def test_flow_hash_and_round_robin_policies(self):
        for policy in ("flow-hash", "round-robin"):
            replay = run_sharded_program(
                small_config(), "P4",
                EngineConfig(workers=3, shard_policy=policy, ingest="replay"),
            )
            dispatch = run_sharded_program(
                small_config(), "P4",
                EngineConfig(workers=3, shard_policy=policy,
                             ingest="dispatch"),
            )
            assert dispatch["digest"] == replay["digest"], policy


class TestFailureHandling:
    def test_worker_error_breaks_pool(self):
        engine = EngineConfig(workers=2, sabotage="error")
        pool = WorkerPool(engine)
        try:
            with pytest.raises(EngineError) as excinfo:
                pool.submit(small_config(), "P4")
            assert excinfo.value.shard == 0
            assert "sabotaged" in str(excinfo.value)
            with pytest.raises(EngineError):  # broken after a failed run
                pool.submit(small_config(), "P4")
        finally:
            pool.close()
        assert no_orphans()

    def test_worker_hard_exit_detected(self):
        engine = EngineConfig(workers=2, sabotage="exit")
        pool = WorkerPool(engine)
        try:
            with pytest.raises(EngineError) as excinfo:
                pool.submit(small_config(), "P4")
            assert "died" in str(excinfo.value)
        finally:
            pool.close()
        assert no_orphans()

    def test_run_sharded_program_routes_dispatch(self):
        block = run_sharded_program(
            small_config(), "P4", EngineConfig(workers=2)
        )
        assert block["ingest"] == "dispatch"
        assert no_orphans()


class TestSpawnStartMethod:
    def test_pool_works_without_fork_inheritance(self):
        # The pipeline travels by control message and the rings attach
        # by name, so a spawn pool must produce the same digest as the
        # default fork pool.
        with WorkerPool(EngineConfig(workers=2)) as pool:
            forked = pool.submit(small_config(packets=120), "P4")
        with WorkerPool(
            EngineConfig(workers=2), start_method="spawn"
        ) as pool:
            spawned = pool.submit(small_config(packets=120), "P4")
        assert spawned["digest"] == forked["digest"]
        assert no_orphans()
