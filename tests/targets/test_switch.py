"""Unit tests for the V1Model-style switch wrapper."""

import pytest

from repro.errors import TargetError
from repro.net.build import PacketBuilder
from repro.targets.pipeline import PipelineInstance
from repro.targets.runtime_api import RuntimeAPI
from repro.targets.switch import Switch, SwitchConfig

from tests.integration.helpers import ENTRY_SETS, eth_ipv4, make_instance


@pytest.fixture()
def switch():
    instance = make_instance("P4", "micro")
    return Switch(instance, SwitchConfig(num_ports=8))


class TestPorts:
    def test_valid_port_forwarding(self, switch):
        outs = switch.inject(eth_ipv4(), in_port=1)
        assert [o.port for o in outs] == [2]

    def test_invalid_in_port_rejected(self, switch):
        with pytest.raises(TargetError):
            switch.inject(eth_ipv4(), in_port=99)

    def test_invalid_group_port_rejected(self, switch):
        with pytest.raises(TargetError):
            switch.set_multicast_group(1, [99])

    def test_non_positive_group_rejected(self, switch):
        with pytest.raises(TargetError):
            switch.set_multicast_group(0, [1])


class TestStats:
    def test_counts_in_out_dropped(self, switch):
        switch.inject(eth_ipv4(), in_port=1)  # forwarded
        switch.inject(eth_ipv4(dst="172.16.0.1"), in_port=1)  # dropped
        assert switch.stats["in"] == 2
        assert switch.stats["out"] == 1
        assert switch.stats["dropped"] == 1

    def test_inject_many(self, switch):
        results = switch.inject_many([eth_ipv4(), eth_ipv4()], in_port=1)
        assert len(results) == 2
        assert all(len(r) == 1 for r in results)


class TestProcessBatch:
    def test_batch_equals_sequential_process(self):
        """process_batch must be observationally identical to calling
        process per packet: same verdicts, same stats, same ledger."""
        items = [
            (eth_ipv4(), 1),
            (eth_ipv4(dst="172.16.0.1"), 1),  # lpm miss -> drop
            (eth_ipv4(), 3),
        ]
        batched = Switch(make_instance("P4", "micro"), SwitchConfig(num_ports=8))
        sequential = Switch(
            make_instance("P4", "micro"), SwitchConfig(num_ports=8)
        )
        batch_verdicts = batched.process_batch(
            (p.copy(), port) for p, port in items
        )
        seq_verdicts = [sequential.process(p, port) for p, port in items]
        assert batched.stats == sequential.stats
        assert batched.drops_by_reason == sequential.drops_by_reason
        for a, b in zip(batch_verdicts, seq_verdicts):
            assert a.kind == b.kind
            assert a.units == b.units
            assert a.reasons == b.reasons
            assert [o.port for o in a.outputs] == [o.port for o in b.outputs]

    def test_empty_batch(self, switch):
        assert switch.process_batch([]) == []
        assert switch.stats["in"] == 0

    def test_batch_accepts_any_iterable(self, switch):
        verdicts = switch.process_batch(
            (eth_ipv4(), port) for port in (1, 2)
        )
        assert len(verdicts) == 2
        assert switch.stats["in"] == 2


class TestRuntimeApiExtras:
    def test_entry_counts(self):
        instance = make_instance("P4", "micro")
        api = RuntimeAPI(instance)
        counts = api.entry_counts()
        fwd = next(k for k in counts if k.endswith("forward_tbl"))
        assert counts[fwd] == 3  # three forward entries installed
        parser = next(k for k in counts if k == "main_parser_tbl")
        assert counts[parser] >= 1  # const entries

    def test_set_default_changes_miss_behavior(self):
        instance = make_instance("P4", "micro")
        api = RuntimeAPI(instance)
        # Route unknown destinations out port 7 instead of dropping.
        from repro.net.ethernet import mac

        api.set_default(
            "forward_tbl", "forward",
            [mac("02:00:00:00:00:aa"), mac("02:00:00:00:00:bb"), 7],
        )
        outs = instance.process(eth_ipv4(dst="10.0.0.5"), 1)
        assert outs[0].port == 2  # hit unchanged
        # A miss on forward_tbl needs a routed nh without a forward
        # entry; install a route to an unknown nh.
        api.add_entry("ipv4_lpm_tbl", [(0xC0000000, 8)], "process", [42])
        outs = instance.process(eth_ipv4(dst="192.1.2.3"), 1)
        assert outs[0].port == 7

    def test_clear_entries(self):
        instance = make_instance("P4", "micro")
        api = RuntimeAPI(instance)
        api.clear("forward_tbl")
        assert instance.process(eth_ipv4(), 1) == []
