"""Differential suite: the closure-compiled backend must be observably
identical to the tree-walking interpreter.

Equivalence is asserted at every surface a user of the behavioral target
can see: per-packet outputs (bytes, ports, multicast group, recirculate
flag), drop reasons, :class:`PacketTrace` event streams, fault-injection
behavior (site trips draw from per-site RNG streams, so trip *order and
count* must match), step-budget kills, soak verdict digests, and the
switch's ``emits + drops == units`` ledger.  Hypothesis drives random
packet bytes and ports over every catalog program in both compile modes.

The suite is parametrized over ``EXEC_BACKENDS`` — every non-interp
backend (closure-compiled, source-codegen, and any future one) is
diffed against the tree-walking reference, so a new backend inherits
the whole parity contract by being added to the seam tuple.
"""

import hashlib
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import TargetError
from repro.lib.catalog import (
    COMPOSITIONS,
    EXTRA_COMPOSITIONS,
    build_monolithic,
    build_pipeline,
)
from repro.net.packet import Packet
from repro.targets.backends import EXEC_BACKENDS, make_pipeline
from repro.targets.faults import FaultPlan, ResourceGuards
from repro.targets.pipeline import PipelineInstance
from repro.targets.runtime_api import RuntimeAPI
from repro.targets.soak import (
    SoakConfig,
    iter_stream,
    run_soak,
    soak_program,
    update_digest,
)
from repro.targets.switch import Switch, SwitchConfig

ALL_PROGRAMS = sorted({*COMPOSITIONS, *EXTRA_COMPOSITIONS})
MODES = ("micro", "mono")

from repro.targets.vector import NUMPY_AVAILABLE

#: Backends exercised this run.  ``vector`` needs the optional numpy
#: extra; without it the backend refuses to construct (reason-coded
#: ``vector-unavailable``), so it drops out of the differential matrix
#: instead of failing it — the no-numpy CI job pins that.
RUN_BACKENDS = tuple(
    b for b in EXEC_BACKENDS if b != "vector" or NUMPY_AVAILABLE
)

#: Every backend that must match the interp reference, packet for packet.
ALT_BACKENDS = tuple(b for b in RUN_BACKENDS if b != "interp")

# Build each (program, mode) composition once per test session — the
# pipelines under test share it (compilation is deterministic, and both
# backends read the same annotated AST).
_COMPOSED = {}


def composed_for(program, mode):
    key = (program, mode)
    if key not in _COMPOSED:
        builder = build_pipeline if mode == "micro" else build_monolithic
        _COMPOSED[key] = builder(program)
    return _COMPOSED[key]


def _match_for(kind, width, rng):
    value = rng.randrange(1 << min(width, 16))
    if kind == "exact":
        return value
    if kind == "lpm":
        return (value, rng.randrange(width + 1))
    if kind == "ternary":
        return (value, rng.randrange(1 << min(width, 16)))
    if kind == "range":
        hi = value + rng.randrange(16)
        return (value, hi)
    return value


def install_entries(instance, seed=7, per_table=6):
    """Deterministically program every table with a few entries."""
    api = RuntimeAPI(instance)
    for tname in sorted(instance.tables):
        runtime = instance.tables[tname]
        actions = [a for a in runtime.decl.actions if a != "NoAction"] or [
            "NoAction"
        ]
        rng = random.Random(f"{seed}:{tname}")
        for j in range(per_table):
            matches = [
                _match_for(kind, width, rng)
                for kind, width in zip(runtime.match_kinds, runtime.key_widths)
            ]
            action = actions[j % len(actions)]
            decl = instance.composed.actions.get(action)
            nargs = len(decl.params) if decl is not None else 0
            try:
                api.add_entry(
                    tname,
                    matches,
                    action,
                    [rng.randrange(8) for _ in range(nargs)],
                    priority=j,
                )
            except TargetError:
                # Some tables reject runtime adds; both backends share
                # TableRuntime so skipping is backend-symmetric.
                pass


def run_one(instance, data, port):
    """One packet through a pipeline, normalized for comparison."""
    try:
        outputs, trace = instance.process_traced(Packet(data), port)
        normalized = [
            (o.packet.tobytes(), o.port, o.mcast_grp, o.recirculate)
            for o in outputs
        ]
        return (normalized, instance.last_drop_reason, None, trace.events)
    except Exception as exc:  # noqa: BLE001 — compared across backends
        return (
            None,
            instance.last_drop_reason,
            f"{type(exc).__name__}: {exc}",
            None,
        )


@pytest.fixture(scope="module", params=ALL_PROGRAMS)
def program(request):
    return request.param


# Built-and-programmed (interp, alt) pipeline pairs, shared across
# Hypothesis examples.  The catalog programs drive both executors with
# identical packet sequences, so any persistent register state evolves
# in lockstep on both sides and the parity comparison stays valid —
# while the N-examples × N-programs × N-backends build cost is paid once
# per combination instead of once per example.
_PAIRS = {}


def pipeline_pair(program, mode, backend):
    key = (program, mode, backend)
    if key not in _PAIRS:
        composed = composed_for(program, mode)
        interp = PipelineInstance(composed)
        comp = make_pipeline(composed, backend)
        install_entries(interp)
        install_entries(comp)
        _PAIRS[key] = (interp, comp)
    return _PAIRS[key]


class TestPipelineEquivalence:
    """Raw pipeline parity: outputs, reasons, traces, byte-for-byte."""

    @pytest.mark.parametrize("backend", ALT_BACKENDS)
    @pytest.mark.parametrize("mode", MODES)
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        packets=st.lists(
            st.tuples(
                st.binary(min_size=0, max_size=96),
                st.integers(0, 7),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_streams_identical(self, program, mode, backend, packets):
        interp, comp = pipeline_pair(program, mode, backend)
        for data, port in packets:
            assert run_one(interp, data, port) == run_one(comp, data, port), (
                f"{program}/{mode}/{backend} diverged on {data!r} port {port}"
            )

    @pytest.mark.parametrize("backend", ALT_BACKENDS)
    @pytest.mark.parametrize("mode", MODES)
    def test_fault_streams_identical(self, program, mode, backend):
        """Same FaultPlan seed → same trips, same verdicts, packet for
        packet (trip order/count parity)."""
        composed = composed_for(program, mode)
        interp = PipelineInstance(composed)
        comp = make_pipeline(composed, backend)
        install_entries(interp)
        install_entries(comp)
        plan_i = FaultPlan(seed=3, sites={"extern": 0.08, "table": 0.08})
        plan_c = FaultPlan(seed=3, sites={"extern": 0.08, "table": 0.08})
        interp.configure_faults(faults=plan_i)
        comp.configure_faults(faults=plan_c)
        rng = random.Random(42)
        for i in range(150):
            data = bytes(
                rng.randrange(256)
                for _ in range(rng.choice((0, 14, 34, 54, 64)))
            )
            port = rng.randrange(8)
            assert run_one(interp, data, port) == run_one(comp, data, port), (
                f"{program}/{mode}/{backend} fault divergence at packet {i}"
            )
        # Trip parity: both plans drew and tripped the same sites the
        # same number of times — the RNG streams stayed in lockstep.
        assert plan_i.trips == plan_c.trips

    @pytest.mark.parametrize("backend", ALT_BACKENDS)
    def test_step_budget_kills_same_packet(self, program, backend):
        """A tight step budget kills on the same packet with the same
        reason-coded FaultError under every backend."""
        composed = composed_for(program, "micro")
        guards = ResourceGuards(interp_step_budget=3)
        interp = PipelineInstance(composed, guards=guards)
        comp = make_pipeline(composed, backend, guards=guards)
        rng = random.Random(1)
        budget_hits = 0
        for _ in range(30):
            data = bytes(rng.randrange(256) for _ in range(34))
            r1 = run_one(interp, data, 1)
            r2 = run_one(comp, data, 1)
            assert r1 == r2
            if r1[2] is not None and "exceeded 3 statements" in r1[2]:
                budget_hits += 1
        assert budget_hits > 0, "budget of 3 should trip on every program"

    @pytest.mark.parametrize("backend", ALT_BACKENDS)
    def test_table_trace_matches(self, program, backend):
        composed = composed_for(program, "micro")
        interp = PipelineInstance(composed)
        comp = make_pipeline(composed, backend)
        install_entries(interp)
        install_entries(comp)
        rng = random.Random(11)
        i_trace = interp.interp.table_trace  # interp keeps it on Interpreter
        c_trace = comp.table_trace
        for _ in range(40):
            data = bytes(rng.randrange(256) for _ in range(54))
            i_trace.clear()
            c_trace.clear()
            run_one(interp, data, 2)
            run_one(comp, data, 2)
            assert i_trace == c_trace


class TestSwitchLedger:
    """Containment-boundary parity through the full switch."""

    @pytest.mark.parametrize("mode", MODES)
    def test_verdicts_and_ledger(self, program, mode):
        config = SoakConfig(
            programs=[program], packets=400, seed=5, fault_rate=0.15,
            mode=mode,
        )
        switches = {}
        for backend in RUN_BACKENDS:
            composed = composed_for(program, mode)
            switch = Switch(
                make_pipeline(composed, exec_backend=backend),
                SwitchConfig(num_ports=16, multicast_groups={1: [2, 3]}),
                guards=ResourceGuards(),
                faults=FaultPlan.uniform(0.15, seed=f"5:{program}"),
            )
            switches[backend] = switch
        digests = {}
        for backend, switch in switches.items():
            digest = hashlib.sha256()
            for index, packet, in_port in iter_stream(config, program, 16):
                verdict = switch.process(packet, in_port)
                assert verdict.balanced(), (
                    f"{backend} unbalanced at packet {index}"
                )
                update_digest(digest, index, verdict)
            stats = switch.stats
            assert stats["units"] == stats["out"] + stats["dropped"]
            digests[backend] = digest.hexdigest()
        assert len(set(digests.values())) == 1, digests


class TestSoakDigests:
    """End-to-end soak parity, single-process and sharded."""

    def test_soak_digest_backend_independent(self):
        blocks = {
            backend: soak_program(
                SoakConfig(
                    programs=["P4"], packets=1200, seed=77, fault_rate=0.1,
                    exec_backend=backend,
                ),
                "P4",
            )
            for backend in RUN_BACKENDS
        }
        assert len({b["digest"] for b in blocks.values()}) == 1
        for backend in RUN_BACKENDS:
            assert blocks[backend]["uncaught"] == []
            assert blocks[backend]["ledger_ok"]

    def test_soak_digest_mono_mode(self):
        digests = {
            backend: soak_program(
                SoakConfig(
                    programs=["P7"], packets=800, seed=31, fault_rate=0.1,
                    mode="mono", exec_backend=backend,
                ),
                "P7",
            )["digest"]
            for backend in RUN_BACKENDS
        }
        assert len(set(digests.values())) == 1, digests

    def test_run_soak_reports_backend(self):
        summary = run_soak(
            SoakConfig(
                programs=["P1"], packets=200, seed=9, fault_rate=0.0,
                exec_backend="compiled",
            )
        )
        assert summary["ok"]
        assert summary["soak"]["exec"] == "compiled"

    def test_sharded_digest_matches_interp(self):
        from repro.targets.engine import EngineConfig

        digests = {}
        for backend in RUN_BACKENDS:
            summary = run_soak(
                SoakConfig(
                    programs=["P4"], packets=600, seed=21, fault_rate=0.1,
                    exec_backend=backend,
                ),
                engine=EngineConfig(workers=2),
            )
            digests[backend] = summary["digest"]
        assert len(set(digests.values())) == 1, digests


_COUNTER_SRC = """
header eth_h { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
struct hdr_t { eth_h eth; }

program PortCounter : implements Unicast<> {
  parser P(extractor ex, pkt p, out hdr_t h) {
    state start { ex.extract(p, h.eth); transition accept; }
  }
  control C(pkt p, inout hdr_t h, im_t im) {
    register() seen;
    apply {
      bit<16> count;
      bit<32> port;
      port = (bit<32>) im.get_in_port();
      seen.read(count, port);
      count = count + 1;
      seen.write(port, (bit<16>) count);
      h.eth.srcMac = (bit<48>) count;
      im.set_out_port(2);
    }
  }
  control D(emitter em, pkt p, in hdr_t h) {
    apply { em.emit(p, h.eth); }
  }
}
PortCounter(P, C, D) main;
"""


class TestPersistentState:
    """Registers persist across packets identically; the catalog programs
    are stateless, so this compiles a per-port counter program."""

    @pytest.mark.parametrize("backend", ALT_BACKENDS)
    def test_register_state_parity(self, backend):
        from repro.core.api import build_dataplane, compile_module

        composed = build_dataplane(
            compile_module(_COUNTER_SRC, "counter.up4")
        ).instance.composed
        interp = PipelineInstance(composed)
        comp = make_pipeline(composed, backend)
        rng = random.Random(2)
        for _ in range(60):
            data = bytes(rng.randrange(256) for _ in range(54))
            port = rng.randrange(4)
            assert run_one(interp, data, port) == run_one(comp, data, port)
        interp_regs = {
            name: dict(reg.cells)
            for name, reg in interp.persistent.items()
        }
        comp_regs = {
            name: dict(reg.cells)
            for name, reg in comp.persistent.items()
        }
        assert interp_regs == comp_regs
        assert interp_regs, "the counter program should touch a register"
        cells = next(iter(interp_regs.values()))
        assert any(v > 1 for v in cells.values()), (
            "per-port counts should accumulate across packets"
        )
