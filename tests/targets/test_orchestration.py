"""End-to-end execution of an Orchestration pipeline (§5.4, Fig. 13).

The A-B validation program of the appendix runs a production router and
a test router over copies of the same packet and emits the mismatching
copies to a logging port — here executed over real packets.
"""

import pytest

from repro.frontend.typecheck import check_program
from repro.net.build import PacketBuilder
from repro.net.ipv4 import ip4
from repro.targets.orchestration import OrchestrationRunner

ROUTER_TEMPLATE = """
header ipv4_h {
  bit<4> version; bit<4> ihl; bit<8> diffserv; bit<16> totalLen;
  bit<16> identification; bit<3> flags; bit<13> fragOffset;
  bit<8> ttl; bit<8> protocol; bit<16> hdrChecksum;
  bit<32> srcAddr; bit<32> dstAddr;
}
struct rr_t { ipv4_h ipv4; }

program %(name)s : implements Unicast<> {
  parser P(extractor ex, pkt p, out rr_t h) {
    state start { ex.extract(p, h.ipv4); transition accept; }
  }
  control C(pkt p, inout rr_t h, im_t im, out bit<16> decision) {
    action route(bit<16> d) { decision = d; }
    action none() { decision = 0; }
    table %(table)s {
      key = { h.ipv4.dstAddr : lpm; }
      actions = { route; none; }
      default_action = none();
    }
    apply { decision = 0; %(table)s.apply(); }
  }
  control D(emitter em, pkt p, in rr_t h) { apply { em.emit(p, h.ipv4); } }
}
"""

VALIDATE = """
prod(pkt p, im_t im, out bit<16> decision);
test(pkt p, im_t im, out bit<16> decision);

program Validate : implements Orchestration<> {
  control C(pkt p, im_t i, out_buf ob) {
    pkt pt;
    im_t it;
    bit<16> dp;
    bit<16> dt;
    prod() prod_i;
    test() test_i;
    apply {
      pt.copy_from(p);
      it.copy_from(i);
      prod_i.apply(p, i, dp);
      test_i.apply(pt, it, dt);
      i.set_out_port((bit<8>) dp);
      ob.enqueue(p, i);
      if (dp != dt) {
        // Disagreement: also emit the test copy to the mirror port.
        it.set_out_port(99);
        ob.enqueue(pt, it);
      }
    }
  }
}
"""


@pytest.fixture(scope="module")
def runner():
    prod = check_program(
        ROUTER_TEMPLATE % {"name": "prod", "table": "prod_lpm"}, "prod.up4"
    )
    test = check_program(
        ROUTER_TEMPLATE % {"name": "test", "table": "test_lpm"}, "test.up4"
    )
    main = check_program(VALIDATE, "validate.up4")
    r = OrchestrationRunner(main, [prod, test])
    # Production and test agree on 10/8 but disagree on 10.9/16.
    r.api("prod_i").add_entry("prod_lpm", [(ip4("10.0.0.0"), 8)], "route", [4])
    r.api("test_i").add_entry("test_lpm", [(ip4("10.0.0.0"), 8)], "route", [4])
    r.api("test_i").add_entry("test_lpm", [(ip4("10.9.0.0"), 16)], "route", [5])
    return r


def packet(dst):
    return PacketBuilder().ipv4("1.1.1.1", dst, 6).payload(b"pp").build()


class TestValidate:
    def test_agreement_single_output(self, runner):
        result = runner.process(packet("10.1.1.1"), in_port=1)
        assert len(result.outputs) == 1
        assert result.outputs[0].port == 4

    def test_disagreement_mirrors_test_copy(self, runner):
        result = runner.process(packet("10.9.1.1"), in_port=1)
        assert len(result.outputs) == 2
        ports = sorted(o.port for o in result.outputs)
        assert ports == [4, 99]

    def test_copies_processed_independently(self, runner):
        result = runner.process(packet("10.9.1.1"), in_port=1)
        # Both outputs carry the same bytes: routing only set decisions.
        a, b = result.outputs
        assert a.packet.tobytes() == b.packet.tobytes()

    def test_plan_attached(self, runner):
        result = runner.process(packet("10.1.1.1"), in_port=1)
        assert sorted(result.plan.slices) == ["p", "pt"]

    def test_unknown_destination_agrees_on_zero(self, runner):
        result = runner.process(packet("172.16.0.1"), in_port=1)
        assert len(result.outputs) == 1
        assert result.outputs[0].port == 0

    def test_per_instance_control_api(self, runner):
        with pytest.raises(Exception):
            runner.api("ghost_i")


class TestDroppedCopies:
    def test_dropped_copy_not_enqueued(self):
        dropper = """
        header b_h { bit<8> x; }
        struct d_t { b_h b; }
        program dropmod : implements Unicast<> {
          parser P(extractor ex, pkt p, out d_t h) {
            state start { ex.extract(p, h.b); transition accept; }
          }
          control C(pkt p, inout d_t h, im_t im) {
            apply { im.drop(); }
          }
          control D(emitter em, pkt p, in d_t h) { apply { em.emit(p, h.b); } }
        }
        """
        main = """
        dropmod(pkt p, im_t im);
        program DropAll : implements Orchestration<> {
          control C(pkt p, im_t i, out_buf ob) {
            dropmod() d_i;
            apply {
              d_i.apply(p, i);
              ob.enqueue(p, i);
            }
          }
        }
        """
        runner = OrchestrationRunner(
            check_program(main, "m.up4"), [check_program(dropper, "d.up4")]
        )
        from repro.net.packet import Packet

        result = runner.process(Packet(b"\x01payload"), in_port=0)
        assert result.outputs == []

    def test_unicast_main_rejected(self):
        src = """
        header b_h { bit<8> x; }
        struct u_t { b_h b; }
        program U : implements Unicast<> {
          parser P(extractor ex, pkt p, out u_t h) {
            state start { transition accept; }
          }
          control C(pkt p, inout u_t h, im_t im) { apply { } }
          control D(emitter em, pkt p, in u_t h) { apply { } }
        }
        """
        from repro.errors import TargetError

        with pytest.raises(TargetError):
            OrchestrationRunner(check_program(src, "u.up4"), [])
