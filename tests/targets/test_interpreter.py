"""Unit tests for the expression/statement interpreter."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TargetError
from repro.frontend import astnodes as ast
from repro.targets.interpreter import (
    Env,
    ExitSignal,
    HeaderValue,
    ImState,
    Interpreter,
    default_value,
)


def bit(width):
    return ast.BitType(width=width)


def lit(value, width):
    e = ast.IntLit(value=value, width=width)
    e.type = bit(width)
    return e


def var(name, width):
    e = ast.PathExpr(name=name)
    e.type = bit(width)
    return e


def binop(op, left, right, width):
    e = ast.BinaryExpr(op=op, left=left, right=right)
    e.type = bit(width)
    return e


@pytest.fixture()
def interp():
    return Interpreter({}, {})


@pytest.fixture()
def env():
    return Env()


class TestArithmetic:
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_add_wraps(self, a, b):
        interp = Interpreter({}, {})
        result = interp.eval(binop("+", lit(a, 8), lit(b, 8), 8), Env())
        assert result == (a + b) % 256

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_sub_wraps(self, a, b):
        interp = Interpreter({}, {})
        result = interp.eval(binop("-", lit(a, 8), lit(b, 8), 8), Env())
        assert result == (a - b) % 256

    def test_concat(self, interp, env):
        result = interp.eval(binop("++", lit(0xAB, 8), lit(0xCD, 8), 16), env)
        assert result == 0xABCD

    def test_division_by_zero_raises(self, interp, env):
        with pytest.raises(TargetError):
            interp.eval(binop("/", lit(4, 8), lit(0, 8), 8), env)

    def test_shift(self, interp, env):
        assert interp.eval(binop("<<", lit(1, 8), lit(7, 8), 8), env) == 128
        assert interp.eval(binop("<<", lit(1, 8), lit(8, 8), 8), env) == 0

    @given(st.integers(0, 0xFFFF), st.integers(0, 15), st.integers(0, 15))
    def test_slice_matches_bit_math(self, value, a, b):
        hi, lo = max(a, b), min(a, b)
        interp = Interpreter({}, {})
        expr = ast.SliceExpr(base=lit(value, 16), hi=hi, lo=lo)
        expr.type = bit(hi - lo + 1)
        assert interp.eval(expr, Env()) == (value >> lo) & ((1 << (hi - lo + 1)) - 1)

    def test_unary(self, interp, env):
        neg = ast.UnaryExpr(op="-", operand=lit(1, 8))
        neg.type = bit(8)
        assert interp.eval(neg, env) == 0xFF
        inv = ast.UnaryExpr(op="~", operand=lit(0x0F, 8))
        inv.type = bit(8)
        assert interp.eval(inv, env) == 0xF0

    def test_cast_truncates(self, interp, env):
        expr = ast.CastExpr(target=bit(4), operand=lit(0xAB, 8))
        expr.type = bit(4)
        assert interp.eval(expr, env) == 0xB


class TestAssignment:
    def test_variable_masking(self, interp, env):
        env.define("x", 0)
        interp.assign(var("x", 8), 0x1FF, env)
        assert env.get("x") == 0xFF

    def test_slice_assignment_rmw(self, interp, env):
        env.define("x", 0xABCD)
        lhs = ast.SliceExpr(base=var("x", 16), hi=7, lo=0)
        lhs.type = bit(8)
        interp.assign(lhs, 0xEF, env)
        assert env.get("x") == 0xABEF

    def test_header_field(self, interp, env):
        htype = ast.HeaderType(name="h", fields=[("f", bit(8))])
        env.define("h", HeaderValue(htype))
        lhs = ast.MemberExpr(base=ast.PathExpr(name="h"), member="f")
        lhs.type = bit(8)
        interp.assign(lhs, 42, env)
        assert env.get("h").fields["f"] == 42

    def test_undefined_name(self, interp, env):
        with pytest.raises(TargetError):
            interp.assign(var("ghost", 8), 1, env)


class TestControlFlow:
    def exec_src(self, body, extra_vars=None):
        from repro.frontend.typecheck import check_program

        module = check_program(
            """
            header h_h { bit<8> a; }
            struct s_t { h_h h; }
            program T : implements Unicast<> {
              parser P(extractor ex, pkt p, out s_t hs) {
                state start { transition accept; }
              }
              control C(pkt p, inout s_t hs, im_t im) {
                apply { %s }
              }
              control D(emitter em, pkt p, in s_t hs) { apply { } }
            }
            """
            % body,
            "t",
        )
        control = module.programs["T"].control
        env = Env()
        stype = module.types["s_t"]
        env.define("hs", default_value(stype))
        env.define("im", ImState())
        interp = Interpreter({}, {})
        interp.exec_block(control.apply_body.stmts, env)
        return env

    def test_if_else(self):
        env = self.exec_src(
            "bit<8> r; if (hs.h.a == 0) { r = 1; } else { r = 2; }"
        )
        assert env.get("r") == 1

    def test_switch_matching_case(self):
        env = self.exec_src(
            "bit<8> r; r = 0; switch (hs.h.a) { 0 : { r = 10; } 1 : { r = 20; } }"
        )
        assert env.get("r") == 10

    def test_switch_default(self):
        env = self.exec_src(
            "bit<8> r; r = 0; hs.h.a = 9; "
            "switch (hs.h.a) { 1 : { r = 1; } default : { r = 99; } }"
        )
        assert env.get("r") == 99

    def test_switch_no_match_no_default(self):
        env = self.exec_src(
            "bit<8> r; r = 5; hs.h.a = 9; switch (hs.h.a) { 1 : { r = 1; } }"
        )
        assert env.get("r") == 5

    def test_switch_fallthrough(self):
        env = self.exec_src(
            "bit<8> r; r = 0; hs.h.a = 1; "
            "switch (hs.h.a) { 1 : 2 : { r = 7; } }"
        )
        assert env.get("r") == 7

    def test_exit_raises(self):
        with pytest.raises(ExitSignal):
            self.exec_src("exit;")

    def test_header_validity_ops(self):
        env = self.exec_src(
            "bit<8> r; r = 0; hs.h.setValid(); if (hs.h.isValid()) { r = 1; }"
        )
        assert env.get("r") == 1


class TestImState:
    def test_drop_port_sets_dropped(self):
        im = ImState()
        im.call("set_out_port", [0xFF])
        assert im.dropped

    def test_get_value_fields(self):
        im = ImState(in_port=4, pkt_len=99)
        assert im.call("get_value", ["IN_PORT"]) == 4
        assert im.call("get_value", ["PKT_LEN"]) == 99

    def test_unknown_intrinsic(self):
        with pytest.raises(TargetError):
            ImState().call("get_value", ["BOGUS"])

    def test_copy_from(self):
        a, b = ImState(in_port=1), ImState(in_port=7)
        a.call("copy_from", [b])
        assert a.in_port == 7
