"""Fault containment: verdicts, resource guards, deterministic injection.

The switch is the containment boundary — every per-packet failure must
surface as a reason-coded :class:`Verdict`, counters must balance, and
an injected :class:`FaultPlan` must replay bit-for-bit from its seed.
"""

import pytest

from repro.errors import TargetError
from repro.net.packet import Packet
from repro.targets.faults import (
    REASONS,
    FaultError,
    FaultPlan,
    ResourceGuards,
    Verdict,
)
from repro.targets.switch import Switch, SwitchConfig

from tests.integration.helpers import eth_ipv4, eth_ipv6, make_instance


def make_switch(mode="micro", **kw):
    kw.setdefault("config", SwitchConfig(num_ports=16))
    return Switch(make_instance("P4", mode), **kw)


# ----------------------------------------------------------------------
# Verdict basics
# ----------------------------------------------------------------------
class TestVerdict:
    def test_emit_path_balances(self):
        sw = make_switch()
        verdict = sw.process(eth_ipv4(), in_port=1)
        assert verdict.kind == Verdict.EMIT
        assert len(verdict.outputs) == 1
        assert verdict.units == 1
        assert verdict.balanced()
        assert sw.stats["units"] == sw.stats["out"] + sw.stats["dropped"]

    def test_pipeline_drop_is_reason_coded(self):
        sw = make_switch()
        # No route for this destination -> program drops it.
        verdict = sw.process(eth_ipv4(dst="172.99.0.1"), in_port=1)
        assert verdict.kind == Verdict.DROP
        assert verdict.reasons == {"pipeline-drop": 1}
        assert verdict.balanced()

    def test_parser_drop_reason(self):
        sw = make_switch()
        # Unknown etherType: the homogenized parser flags an error.
        from repro.net.build import PacketBuilder

        pkt = (
            PacketBuilder()
            .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0xBEEF)
            .payload(b"odd")
            .build()
        )
        verdict = sw.process(pkt, in_port=1)
        assert verdict.outputs == []
        assert set(verdict.reasons) <= {"parser-error", "pipeline-drop"}
        assert verdict.balanced()

    def test_truncated_extract_contained_mono(self):
        # The mono pipeline uses the native parser, so a packet shorter
        # than its extracts surfaces the truncated-extract reason.
        sw = make_switch(mode="mono")
        data = eth_ipv4().tobytes()
        verdict = sw.process(Packet(data[:20]), in_port=1)
        assert verdict.outputs == []
        assert verdict.reasons == {"truncated-extract": 1}
        assert verdict.balanced()
        assert sw.drops_by_reason["truncated-extract"] == 1

    def test_invalid_in_port_still_raises(self):
        sw = make_switch()
        with pytest.raises(TargetError):
            sw.process(eth_ipv4(), in_port=99)

    def test_reasons_are_stable_slugs(self):
        assert len(REASONS) == len(set(REASONS))
        for reason in REASONS:
            assert reason == reason.lower()
            assert " " not in reason


# ----------------------------------------------------------------------
# Resource guards
# ----------------------------------------------------------------------
class TestResourceGuards:
    def test_step_budget_contained(self):
        guards = ResourceGuards(interp_step_budget=3)
        sw = make_switch(guards=guards)
        verdict = sw.process(eth_ipv4(), in_port=1)
        assert verdict.kind == Verdict.KILLED
        assert verdict.reasons == {"step-budget": 1}
        assert verdict.balanced()
        assert sw.stats["killed"] == 1

    def test_step_budget_strict_raises(self):
        guards = ResourceGuards(interp_step_budget=3)
        sw = make_switch(guards=guards, strict=True)
        with pytest.raises(FaultError) as info:
            sw.process(eth_ipv4(), in_port=1)
        assert info.value.reason == "step-budget"

    def test_step_budget_resets_between_packets(self):
        # A budget generous enough for one packet must stay generous for
        # the thousandth — the counter is per-packet, not cumulative.
        sw = make_switch(guards=ResourceGuards(interp_step_budget=5000))
        for _ in range(10):
            verdict = sw.process(eth_ipv4(), in_port=1)
            assert verdict.kind == Verdict.EMIT

    def test_guards_to_dict_round_trip(self):
        guards = ResourceGuards(max_recirculations=2, interp_step_budget=7)
        d = guards.to_dict()
        assert d["max_recirculations"] == 2
        assert d["interp_step_budget"] == 7
        assert ResourceGuards(**d) == guards


# ----------------------------------------------------------------------
# Multicast misconfiguration
# ----------------------------------------------------------------------
class TestMulticastContainment:
    SRC = """
    header eth_h { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
    struct hdr_t { eth_h eth; }

    program Flood : implements Multicast<> {
      parser P(extractor ex, pkt p, out hdr_t h) {
        state start { ex.extract(p, h.eth); transition accept; }
      }
      control C(pkt p, inout hdr_t h, im_t im) {
        mc_engine() mce;
        apply { mce.set_mc_group(1); }
      }
      control D(emitter em, pkt p, in hdr_t h) {
        apply { em.emit(p, h.eth); }
      }
    }
    Flood(P, C, D) main;
    """

    def build(self, groups, guards=None, strict=False):
        from repro.core.api import build_dataplane, compile_module

        dp = build_dataplane(
            compile_module(self.SRC, "flood.up4"),
            switch_config=SwitchConfig(num_ports=8, multicast_groups=groups),
        )
        sw = dp.switch
        if guards is not None:
            sw.guards = guards
        sw.strict = strict
        return sw

    def pkt(self):
        return eth_ipv4()

    def test_missing_group_counted(self):
        sw = self.build(groups={})
        verdict = sw.process(self.pkt(), in_port=1)
        assert verdict.outputs == []
        assert verdict.reasons == {"mcast-no-group": 1}
        assert verdict.balanced()

    def test_missing_group_strict_raises(self):
        sw = self.build(groups={}, strict=True)
        with pytest.raises(FaultError) as info:
            sw.process(self.pkt(), in_port=1)
        assert info.value.reason == "mcast-no-group"

    def test_out_of_range_port_counted(self):
        # Port 40 is out of range for an 8-port switch; the valid copies
        # still go out and every unit is accounted for.
        sw = self.build(groups={1: [2, 40, 3]})
        verdict = sw.process(self.pkt(), in_port=1)
        assert sorted(o.port for o in verdict.outputs) == [2, 3]
        assert verdict.reasons == {"mcast-misconfig": 1}
        assert verdict.units == 3
        assert verdict.balanced()

    def test_fanout_cap_counted(self):
        sw = self.build(
            groups={1: [2, 3, 4, 5, 6]},
            guards=ResourceGuards(max_mcast_fanout=2),
        )
        verdict = sw.process(self.pkt(), in_port=1)
        assert len(verdict.outputs) == 2
        assert verdict.reasons == {"mcast-fanout": 3}
        assert verdict.units == 5
        assert verdict.balanced()


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_named_table_site_kills_every_lookup(self):
        plan = FaultPlan(seed=7, sites={"table:ipv4_lpm_tbl": 1.0})
        sw = make_switch(faults=plan)
        verdict = sw.process(eth_ipv4(), in_port=1)
        assert verdict.kind == Verdict.KILLED
        assert verdict.reasons == {"extern-fault": 1}
        assert plan.trips == {"table:ipv4_lpm_tbl": 1}
        # IPv6 traffic never touches that table -> unaffected.
        verdict = sw.process(eth_ipv6(), in_port=1)
        assert verdict.kind == Verdict.EMIT

    def test_buffer_site_drops_emits(self):
        plan = FaultPlan(seed=7, sites={"buffer": 1.0})
        sw = make_switch(faults=plan)
        verdict = sw.process(eth_ipv4(), in_port=1)
        assert verdict.outputs == []
        assert verdict.reasons == {"buffer-exhausted": 1}
        assert verdict.balanced()

    def test_corrupt_and_truncate_mutate_bytes(self):
        plan = FaultPlan(seed=1, sites={"corrupt": 1.0, "truncate": 1.0})
        data = bytes(range(64))
        mutated, applied = plan.mutate(data)
        assert applied == ["corrupt", "truncate"]
        assert mutated != data
        assert len(mutated) <= len(data)

    def test_rate_zero_never_trips(self):
        plan = FaultPlan(seed=1, sites={"table": 0.0})
        assert not any(plan.trip("table", "ipv4_lpm_tbl") for _ in range(200))
        assert plan.trips == {}

    def test_from_spec_validates(self):
        with pytest.raises(TargetError):
            FaultPlan.from_spec({"sites": {"warp-core": 0.5}})
        with pytest.raises(TargetError):
            FaultPlan.from_spec({"sites": {"table": 1.5}})
        with pytest.raises(TargetError):
            FaultPlan.from_spec({"seed": 1.5, "sites": {}})
        plan = FaultPlan.from_spec(
            {"seed": 3, "sites": {"table:ipv4_lpm_tbl": 0.25, "corrupt": 0.1}}
        )
        assert plan.sites["table:ipv4_lpm_tbl"] == 0.25

    def test_uniform_covers_all_categories(self):
        plan = FaultPlan.uniform(0.4, seed=9)
        assert set(plan.sites) == {"corrupt", "truncate", "table", "extern", "buffer"}
        assert plan.sites["corrupt"] == 0.4


class TestDeterminism:
    """Acceptance criterion: same seed + same plan => identical
    verdict/counter stream."""

    def run_stream(self, seed):
        plan = FaultPlan.uniform(0.3, seed=seed)
        sw = make_switch(faults=plan)
        stream = []
        for i in range(120):
            pkt = eth_ipv4(ttl=(i % 4) * 60) if i % 3 else eth_ipv6()
            verdict = sw.process(pkt, in_port=i % 8)
            stream.append(
                (verdict.kind, len(verdict.outputs), sorted(verdict.reasons.items()))
            )
        return stream, dict(sw.drops_by_reason), dict(plan.trips)

    def test_same_seed_same_stream(self):
        assert self.run_stream(42) == self.run_stream(42)

    def test_different_seed_differs(self):
        assert self.run_stream(42)[0] != self.run_stream(43)[0]

    def test_reset_rewinds_the_plan(self):
        plan = FaultPlan.uniform(0.5, seed=5)
        first = [plan.trip("table", "t") for _ in range(50)]
        plan.reset()
        assert [plan.trip("table", "t") for _ in range(50)] == first


# ----------------------------------------------------------------------
# Error plumbing
# ----------------------------------------------------------------------
class TestFaultError:
    def test_reason_becomes_code(self):
        exc = FaultError("step-budget", site="interp")
        assert exc.code == "step-budget"
        assert "interp" in str(exc)

    def test_to_dict_carries_reason_and_site(self):
        exc = FaultError("extern-fault", site="table:ipv4_lpm_tbl")
        d = exc.to_dict()
        assert d["reason"] == "extern-fault"
        assert d["site"] == "table:ipv4_lpm_tbl"
        assert d["code"] == "extern-fault"
        assert isinstance(d["exit_code"], int)
