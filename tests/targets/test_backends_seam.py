"""The ``ExecBackend`` seam and the reason-coded ``Env`` lookup errors.

The seam (:mod:`repro.targets.backends`) is the single place that maps a
backend name to an executor class; everything downstream — the switch,
soak harness, CLI — goes through it.  These tests pin the seam's
contract: known names build the right class, unknown names fail with a
stable machine-readable code, and ``Switch(exec_backend=...)`` rebuilds
the executor for the same composed program.
"""

import pytest

from repro.errors import TargetError
from repro.lib.catalog import build_pipeline
from repro.targets.backends import (
    DEFAULT_EXEC_BACKEND,
    EXEC_BACKENDS,
    backend_of,
    make_pipeline,
)
from repro.targets.codegen import CodegenPipeline
from repro.targets.compiled import CompiledPipeline
from repro.targets.interpreter import Env
from repro.targets.pipeline import PipelineInstance
from repro.targets.switch import Switch
from repro.targets.vector import NUMPY_AVAILABLE, VectorPipeline


@pytest.fixture(scope="module")
def composed():
    return build_pipeline("P1")


class TestMakePipeline:
    def test_backend_names(self):
        assert EXEC_BACKENDS == ("interp", "compiled", "codegen", "vector")
        assert DEFAULT_EXEC_BACKEND == "interp"

    def test_interp_backend(self, composed):
        instance = make_pipeline(composed, "interp")
        assert isinstance(instance, PipelineInstance)
        assert backend_of(instance) == "interp"

    def test_compiled_backend(self, composed):
        instance = make_pipeline(composed, "compiled")
        assert isinstance(instance, CompiledPipeline)
        assert backend_of(instance) == "compiled"

    def test_codegen_backend(self, composed):
        instance = make_pipeline(composed, "codegen")
        assert isinstance(instance, CodegenPipeline)
        assert backend_of(instance) == "codegen"
        # The generated module is kept for debugging and compiles clean.
        assert "def _cg_run(" in instance.source

    @pytest.mark.skipif(not NUMPY_AVAILABLE, reason="numpy not installed")
    def test_vector_backend(self, composed):
        instance = make_pipeline(composed, "vector")
        assert isinstance(instance, VectorPipeline)
        assert backend_of(instance) == "vector"

    @pytest.mark.skipif(NUMPY_AVAILABLE, reason="numpy installed")
    def test_vector_unavailable_without_numpy(self, composed):
        """No numpy → a reason-coded error, not an ImportError."""
        with pytest.raises(TargetError) as exc:
            make_pipeline(composed, "vector")
        assert exc.value.code == "vector-unavailable"
        assert "numpy" in str(exc.value)

    def test_default_is_interp(self, composed):
        assert backend_of(make_pipeline(composed)) == "interp"

    def test_unknown_backend_reason_coded(self, composed):
        with pytest.raises(TargetError) as exc:
            make_pipeline(composed, "jit")
        assert exc.value.code == "unknown-backend"
        assert "jit" in str(exc.value)
        assert "compiled" in str(exc.value)  # names the known backends

    def test_shared_surface(self, composed):
        """Every executor exposes the surface the switch/API relies on."""
        for backend in EXEC_BACKENDS:
            if backend == "vector" and not NUMPY_AVAILABLE:
                continue
            instance = make_pipeline(composed, backend)
            for attr in (
                "process",
                "process_traced",
                "tables",
                "composed",
                "configure_faults",
                "guards",
                "last_drop_reason",
                "persistent",
            ):
                assert hasattr(instance, attr), f"{backend} lacks {attr}"


class TestSwitchSeam:
    def test_rebuild_on_mismatch(self, composed):
        switch = Switch(PipelineInstance(composed), exec_backend="compiled")
        assert isinstance(switch.pipeline, CompiledPipeline)
        assert switch.pipeline.composed is composed

    def test_no_rebuild_on_match(self, composed):
        instance = PipelineInstance(composed)
        switch = Switch(instance, exec_backend="interp")
        assert switch.pipeline is instance

    def test_no_rebuild_by_default(self, composed):
        instance = CompiledPipeline(composed)
        switch = Switch(instance)
        assert switch.pipeline is instance

    def test_rebuild_rejects_unknown(self, composed):
        with pytest.raises(TargetError) as exc:
            Switch(PipelineInstance(composed), exec_backend="jit")
        assert exc.value.code == "unknown-backend"


class TestEnvUndefinedName:
    def test_read_miss_is_reason_coded(self):
        env = Env(label="action frame")
        with pytest.raises(TargetError) as exc:
            env.get("meta_x")
        assert exc.value.code == "undefined-name"
        assert "meta_x" in str(exc.value)
        assert "action frame" in str(exc.value)

    def test_write_miss_is_reason_coded(self):
        env = Env()
        with pytest.raises(TargetError) as exc:
            env.set("ghost", 1)
        assert exc.value.code == "undefined-name"
        assert "ghost" in str(exc.value)
        assert "pipeline" in str(exc.value)  # root label default

    def test_child_inherits_label(self):
        parent = Env(label="parser frame")
        child = Env(parent)
        with pytest.raises(TargetError) as exc:
            child.get("nope")
        assert "parser frame" in str(exc.value)

    def test_hit_through_chain(self):
        parent = Env(label="pipeline")
        parent.define("x", 7)
        child = Env(parent, label="action frame")
        assert child.get("x") == 7
        child.set("x", 9)
        assert parent.get("x") == 9
