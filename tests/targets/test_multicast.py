"""Multicast (paper Fig. 12): mc_engine + the switch's PRE."""

import pytest

from repro.core.api import build_dataplane, compile_module
from repro.net.build import PacketBuilder, dissect

MCAST_SRC = """
header eth_h { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
struct hdr_t { eth_h eth; }

program Flood : implements Multicast<> {
  parser P(extractor ex, pkt p, out hdr_t h) {
    state start { ex.extract(p, h.eth); transition accept; }
  }
  control C(pkt p, inout hdr_t h, im_t im) {
    mc_engine() mce;
    action replicate(bit<16> gid) {
      mce.set_mc_group(gid);
    }
    action unicast(bit<8> port) {
      im.set_out_port(port);
    }
    table mcast_tbl {
      key = { h.eth.dstMac : exact; }
      actions = { replicate; unicast; }
      default_action = unicast(0);
    }
    apply { mcast_tbl.apply(); }
  }
  control D(emitter em, pkt p, in hdr_t h) {
    apply { em.emit(p, h.eth); }
  }
}
Flood(P, C, D) main;
"""

BROADCAST = 0xFFFFFFFFFFFF


@pytest.fixture(scope="module")
def dataplane():
    dp = build_dataplane(compile_module(MCAST_SRC, "flood.up4"))
    dp.set_multicast_group(1, [2, 3, 4])
    dp.api.add_entry("mcast_tbl", [BROADCAST], "replicate", [1])
    return dp


def bcast_packet():
    return (
        PacketBuilder()
        .ethernet("ff:ff:ff:ff:ff:ff", "02:00:00:00:00:01", 0x0800)
        .payload(b"who-has")
        .build()
    )


class TestReplication:
    def test_broadcast_replicated_to_group(self, dataplane):
        outs = dataplane.inject(bcast_packet(), in_port=1)
        assert sorted(o.port for o in outs) == [2, 3, 4]

    def test_replicas_are_copies(self, dataplane):
        outs = dataplane.inject(bcast_packet(), in_port=1)
        outs[0].packet.write(0, b"\x00")
        assert outs[1].packet.tobytes() != outs[0].packet.tobytes()

    def test_replica_bytes_match_input(self, dataplane):
        pkt = bcast_packet()
        outs = dataplane.inject(pkt.copy(), in_port=1)
        for out in outs:
            assert out.packet == pkt

    def test_unicast_not_replicated(self, dataplane):
        dataplane.api.add_entry("mcast_tbl", [0x020000000002], "unicast", [5])
        pkt = (
            PacketBuilder()
            .ethernet("02:00:00:00:00:02", "02:00:00:00:00:01", 0x0800)
            .build()
        )
        outs = dataplane.inject(pkt, in_port=1)
        assert [o.port for o in outs] == [5]

    def test_unknown_group_drops(self, dataplane):
        dataplane.api.add_entry("mcast_tbl", [0x020000000009], "replicate", [77])
        pkt = (
            PacketBuilder()
            .ethernet("02:00:00:00:00:09", "02:00:00:00:00:01", 0x0800)
            .build()
        )
        assert dataplane.inject(pkt, in_port=1) == []

    def test_switch_stats(self, dataplane):
        before = dataplane.switch.stats["replicated"]
        dataplane.inject(bcast_packet(), in_port=1)
        assert dataplane.switch.stats["replicated"] == before + 3
