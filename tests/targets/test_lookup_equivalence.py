"""Differential tests: the indexed table-lookup fast path must return
exactly what the reference linear scan returns — same action, args,
hit flag and matched entry — over randomized entry sets, and identical
packet traces end-to-end through composed pipelines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import astnodes as ast
from repro.targets.tables import TableRuntime

WIDTH = 16
FULL = (1 << WIDTH) - 1

# Small value pool so random queries actually collide with entries.
values = st.one_of(st.integers(0, 7), st.integers(0, FULL))


def match_for(kind):
    if kind == "exact":
        return st.one_of(st.none(), values)
    if kind == "lpm":
        return st.one_of(
            st.none(), st.tuples(values, st.integers(0, WIDTH))
        )
    if kind == "ternary":
        return st.one_of(st.none(), st.tuples(values, values))
    if kind == "range":
        return st.one_of(
            st.none(),
            st.tuples(values, values).map(lambda p: (min(p), max(p))),
        )
    raise AssertionError(kind)


KIND_COMBOS = [
    ["exact"],
    ["exact", "exact"],
    ["lpm"],
    ["lpm", "exact"],
    ["exact", "lpm", "exact"],
    ["ternary"],
    ["ternary", "exact"],
    ["range", "exact"],
    ["lpm", "ternary"],
    ["lpm", "lpm"],
]


def table_config():
    def entries_for(kinds):
        entry = st.tuples(
            st.tuples(*[match_for(k) for k in kinds]),
            st.integers(0, 3),  # priority
        )
        queries = st.lists(
            st.tuples(*[values for _ in kinds]), min_size=1, max_size=8
        )
        return st.tuples(
            st.just(kinds),
            st.lists(entry, max_size=10),
            st.lists(entry, max_size=4),  # installed after the first lookups
            queries,
        )

    return st.sampled_from(KIND_COMBOS).flatmap(entries_for)


def build_table(kinds):
    keys = []
    for i, kind in enumerate(kinds):
        expr = ast.PathExpr(name=f"k{i}")
        expr.type = ast.BitType(width=WIDTH)
        keys.append(ast.KeyElement(expr=expr, match_kind=kind))
    decl = ast.TableDecl(
        name="t", keys=keys, actions=["hit", "miss"], default_action="miss"
    )
    return TableRuntime(decl)


def assert_equivalent(table, query):
    indexed = table.lookup_full(query)
    scan = table.lookup_scan_full(query)
    assert indexed[0] == scan[0], (query, indexed, scan)
    assert indexed[1] == scan[1]
    assert indexed[2] == scan[2]
    assert indexed[3] is scan[3]  # the very same Entry object


@settings(max_examples=200, deadline=None)
@given(table_config())
def test_indexed_matches_reference_scan(config):
    kinds, first_batch, second_batch, queries = config
    table = build_table(kinds)
    for i, (matches, priority) in enumerate(first_batch):
        table.add_entry(list(matches), "hit", [i], priority=priority)
    for query in queries:
        assert_equivalent(table, query)
    # Mutations must invalidate the index and stay equivalent.
    for i, (matches, priority) in enumerate(second_batch):
        table.add_entry(list(matches), "hit", [100 + i], priority=priority)
        for query in queries:
            assert_equivalent(table, query)
    table.clear_runtime_entries()
    for query in queries:
        assert_equivalent(table, query)


@pytest.mark.parametrize("name", ["P2", "P4"])
def test_pipeline_traces_identical(name):
    """Indexed and scan instances of a composed pipeline must produce
    identical outputs and identical packet traces (hit sequences, entry
    indices) over the standard corpus."""
    from tests.integration.helpers import make_instance, standard_corpus

    indexed = make_instance(name, "micro", use_table_index=True)
    scan = make_instance(name, "micro", use_table_index=False)
    for pkt in standard_corpus(name):
        outs_i, trace_i = indexed.process_traced(pkt.copy(), 1)
        outs_s, trace_s = scan.process_traced(pkt.copy(), 1)
        assert [
            (o.packet.tobytes(), o.port, o.mcast_grp, o.recirculate)
            for o in outs_i
        ] == [
            (o.packet.tobytes(), o.port, o.mcast_grp, o.recirculate)
            for o in outs_s
        ]
        assert trace_i.hit_sequence() == trace_s.hit_sequence()
        assert [(e.kind, e.data) for e in trace_i.events] == [
            (e.kind, e.data) for e in trace_s.events
        ]
