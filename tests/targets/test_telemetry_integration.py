"""Telemetry plane end-to-end: digest neutrality and live publishing.

The acceptance contract: turning telemetry on (live publishing, latency
histograms, flight recorder, trace streaming) must not move a single
bit of the verdict-stream digest, and sharded runs must surface
epoch-stamped per-shard snapshots whose merged counters match the final
summary.
"""

from repro.net.packet import Packet
from repro.obs.metrics import METRICS, collecting
from repro.obs.telemetry import LiveTelemetry
from repro.targets.engine import EngineConfig, run_sharded_program
from repro.targets.soak import SoakConfig, run_soak, soak_program


def quick_config(**kw):
    kw.setdefault("programs", ["P4"])
    kw.setdefault("packets", 400)
    kw.setdefault("seed", 99)
    kw.setdefault("fault_rate", 0.2)
    return SoakConfig(**kw)


class TestDigestNeutrality:
    def test_single_process_digest_unchanged_by_telemetry(self):
        baseline = soak_program(quick_config(), "P4")
        telemetry = LiveTelemetry()
        with collecting():
            live = soak_program(
                quick_config(), "P4", telemetry=telemetry,
                publish_interval_s=0.0,  # publish on every check
            )
        assert live["digest"] == baseline["digest"]
        assert live["packets"] == baseline["packets"]

    def test_sharded_digest_unchanged_by_telemetry(self):
        config = quick_config(packets=600, exec_backend="compiled")
        off = run_sharded_program(config, "P4", EngineConfig(workers=2))
        telemetry = LiveTelemetry()
        on = run_sharded_program(
            config,
            "P4",
            EngineConfig(workers=2, publish_interval_s=0.001),
            telemetry=telemetry,
        )
        assert on["digest"] == off["digest"]

    def test_flight_recorder_capacity_does_not_move_digest(self):
        a = soak_program(quick_config(flight_recorder=0), "P4")
        b = soak_program(quick_config(flight_recorder=8), "P4")
        assert a["digest"] == b["digest"]


class TestLivePublishing:
    def test_sharded_run_publishes_final_epochs(self):
        telemetry = LiveTelemetry()
        config = quick_config(packets=500)
        block = run_sharded_program(
            config, "P4", EngineConfig(workers=2), telemetry=telemetry
        )
        assert telemetry.sources() == [("P4", 0), ("P4", 1)]
        snap = telemetry.snapshot()
        assert all(s["final"] for s in snap["shards"])
        assert all(s["epoch"] >= 1 for s in snap["shards"])
        # The folded live ledger ends exactly at the merged summary.
        assert snap["ledger"]["in"] == block["packets"]
        assert snap["ledger"]["out"] == block["emits"]
        assert snap["ledger"]["dropped"] == block["drops"]
        merged = telemetry.merged_registry()
        assert merged.counter("switch.packets") == block["packets"]

    def test_run_soak_threads_telemetry_through(self):
        telemetry = LiveTelemetry()
        summary = run_soak(
            quick_config(programs=["P4", "P7"], packets=300),
            engine=EngineConfig(workers=2),
            telemetry=telemetry,
        )
        assert summary["ok"]
        assert {p for p, _ in telemetry.sources()} == {"P4", "P7"}

    def test_latency_quantiles_present_in_live_view(self):
        telemetry = LiveTelemetry()
        run_sharded_program(
            quick_config(packets=400), "P4",
            EngineConfig(workers=2), telemetry=telemetry,
        )
        latency = telemetry.snapshot()["latency_us"]
        for stage in ("parse", "lookup", "action"):
            key = f"pipeline.latency_us.{stage}"
            assert latency[key]["count"] > 0
            assert latency[key]["p50"] > 0
        assert latency["switch.latency_us.packet"]["p99"] >= (
            latency["switch.latency_us.packet"]["p50"]
        )


class TestLatencyInstrumentationBothBackends:
    def _stage_counts(self, exec_backend):
        from repro.targets.soak import _build_switch, _routable_templates

        config = quick_config(
            fault_rate=0.0, traffic="routable", exec_backend=exec_backend
        )
        switch = _build_switch(config, "P4")
        with collecting():
            for data in _routable_templates():
                switch.process(Packet(data), 1)
            return {
                stage: (METRICS.histogram(f"pipeline.latency_us.{stage}") or {})
                .get("count", 0)
                for stage in ("parse", "lookup", "action", "deparse")
            }

    def test_same_stage_keys_same_counts(self):
        interp = self._stage_counts("interp")
        compiled = self._stage_counts("compiled")
        # Both backends report under the same keys with identical
        # observation counts — the backend must not change what is
        # counted, only how fast it runs.
        assert interp == compiled
        assert all(count > 0 for count in interp.values())


class TestFlightRecorderWiring:
    def test_dump_attached_on_uncaught_escape(self):
        # strict=True re-raises contained faults, which the soak loop
        # then counts as an uncaught escape — exactly the case the
        # flight recorder exists for.
        block = soak_program(
            quick_config(packets=200, strict=True, fault_rate=0.3), "P4"
        )
        assert block["uncaught"]
        assert "flight_recorder" in block
        assert len(block["flight_recorder"]) <= 64
        kinds = {entry["kind"] for entry in block["flight_recorder"]}
        assert "uncaught" in kinds

    def test_no_dump_on_clean_run(self):
        block = soak_program(quick_config(packets=100, fault_rate=0.0), "P4")
        assert not block["uncaught"]
        assert "flight_recorder" not in block
