"""The vectorized numpy backend: divergence splitting, fallbacks, and
digest parity (DESIGN.md §16).

The differential suite already diffs ``vector`` against the interpreter
per packet (it parametrizes over the seam tuple); this file covers what
is *specific* to columnwise execution:

* divergence splitting — fault-injected lanes, runtime errors, and
  byte-stack bounds kills split out of the vector path in per-site RNG
  lane order, so batched results match the per-lane codegen batch body
  triple for triple;
* the fallback ladder — step budgets that could fire, plans that decline
  (mono mode has no SoA layout), and per-lane table lookups past the
  scan limit all quietly take the slower-but-exact path;
* the numpy-optional policy — without numpy the backend refuses with
  ``error[vector-unavailable]`` and every other backend still works;
* ``--batch-lanes`` — validated up front, digest-invariant;
* the codegen build cache the vector backend inherits.
"""

import hashlib

import pytest

from repro.errors import TargetError
from repro.lib.catalog import build_monolithic, build_pipeline
from repro.obs.metrics import METRICS
from repro.targets import vector as vector_mod
from repro.targets.backends import make_pipeline
from repro.targets.faults import FaultPlan, ResourceGuards
from repro.targets.runtime_api import RuntimeAPI
from repro.targets.soak import SoakConfig, run_soak, soak_program
from repro.targets.vector import NUMPY_AVAILABLE, VectorPipeline
from tests.integration.helpers import (
    ENTRY_SETS,
    MAC_A,
    MAC_B,
    eth_ipv4,
    eth_ipv6,
    ip4,
    mac,
)

needs_numpy = pytest.mark.skipif(not NUMPY_AVAILABLE, reason="numpy not installed")


@pytest.fixture
def metrics():
    METRICS.enable()
    METRICS.reset()
    yield METRICS
    METRICS.reset()
    METRICS.disable()


def build(backend="vector", program="P4", fault_rate=0.0, guards=None,
          entries=True, mode="micro"):
    builder = build_pipeline if mode == "micro" else build_monolithic
    composed = builder(program)
    faults = FaultPlan.uniform(fault_rate, seed=1234) if fault_rate else None
    inst = make_pipeline(
        composed, exec_backend=backend, guards=guards, faults=faults
    )
    if entries:
        api = RuntimeAPI(inst)
        for table, matches, act_micro, act_mono, args in ENTRY_SETS[program]:
            api.add_entry(
                table, matches, act_micro if mode == "micro" else act_mono, args
            )
    return inst


def corpus(n=256):
    pkts = []
    for i in range(n):
        if i % 3 == 2:
            pkts.append(eth_ipv6(dst="2001:db8::%x" % (i + 1), hop=1 + i % 250))
        else:
            pkts.append(eth_ipv4(dst="10.0.%d.%d" % (i % 256, (i * 7) % 256),
                                 ttl=1 + i % 250,
                                 payload=b"x" * (i % 9)))
    return pkts


def run_batch(inst, pkts):
    datas = [p.tobytes() for p in pkts]
    return inst.process_soa(datas, [1] * len(datas), pkts)


def normalize(triples):
    out = []
    for outputs, reason, exc in triples:
        if exc is not None:
            out.append(("exc", type(exc).__name__, str(exc),
                        getattr(exc, "reason", None)))
        elif outputs is None:
            out.append(("none",))
        elif not outputs:
            out.append(("drop", reason))
        else:
            out.append(("emit", tuple(
                (o.packet.tobytes(), o.port, o.mcast_grp, o.recirculate)
                for o in outputs
            )))
    return out


@needs_numpy
class TestDivergenceSplitting:
    def test_faultless_batch_matches_codegen(self):
        pkts = corpus()
        got = normalize(run_batch(build("vector"), pkts))
        want = normalize(run_batch(build("codegen"), pkts))
        assert got == want

    def test_fault_lanes_split_in_rng_order(self):
        """Injected trips draw per-site RNG streams in lane order, so
        exactly the same lanes die with the same messages."""
        pkts = corpus()
        vec = build("vector", fault_rate=0.15)
        ref = build("codegen", fault_rate=0.15)
        got = normalize(run_batch(vec, pkts))
        want = normalize(run_batch(ref, pkts))
        assert got == want
        assert any(t[0] == "exc" for t in got)  # faults actually fired
        assert vec.table_trace == ref.table_trace

    def test_split_lanes_counted(self, metrics):
        pkts = corpus()
        vec = build("vector", fault_rate=0.15)
        METRICS.reset()
        triples = run_batch(vec, pkts)
        killed = sum(1 for _o, _r, exc in triples if exc is not None)
        assert killed > 0
        snap = METRICS.snapshot()["counters"]
        assert snap.get("vector.split_lanes", 0) == killed
        assert snap.get("vector.packets") == len(pkts)

    def test_trace_and_metrics_match_per_packet(self, metrics):
        """Lane-major bookkeeping replay == per-packet execution."""
        pkts = corpus(64)
        vec = build("vector", fault_rate=0.1)
        pp = build("vector", fault_rate=0.1)
        METRICS.reset()
        run_batch(vec, pkts)
        batch_snap = METRICS.snapshot()["counters"]
        METRICS.reset()
        for p in pkts:
            try:
                pp.process(p.copy(), 1)
            except Exception:
                pass
        pkt_snap = METRICS.snapshot()["counters"]
        for key in ("vector.table_hits", "vector.table_misses",
                    "interp.lookup.indexed", "interp.lookup.scan"):
            assert batch_snap.get(key, 0) == pkt_snap.get(key, 0), key
        assert vec.table_trace == pp.table_trace


@needs_numpy
class TestFallbackLadder:
    def test_step_budget_falls_back_to_codegen_batch(self, metrics):
        """A step budget the plan's static bound can reach must keep
        per-lane accounting — the batch reruns through the codegen body
        and lanes die with the interpreter's step-budget fault."""
        guards = ResourceGuards(interp_step_budget=10)
        vec = build("vector", guards=guards)
        assert vec.vector_plan is not None
        assert vec.vector_plan.step_bound > vec.step_limit
        ref = build("codegen", guards=guards)
        pkts = corpus(32)
        METRICS.reset()
        got = normalize(run_batch(vec, pkts))
        snap = METRICS.snapshot()["counters"]
        assert snap.get("vector.soa_fallback_batches", 0) == 1
        want = normalize(run_batch(ref, pkts))
        assert got == want
        assert all(t[0] == "exc" and t[3] == "step-budget" for t in got)

    def test_mono_mode_declines_plan(self):
        """No byte-stack arena in mono mode — the plan declines and the
        backend still works through the inherited per-packet path."""
        vec = build("vector", program="P1", mode="mono")
        assert vec.vector_plan is None
        assert vec.vector_decline_reason
        pkts = [eth_ipv4(dst="10.0.0.5")]
        outs = vec.process(pkts[0].copy(), 1)
        ref = build("codegen", program="P1", mode="mono")
        assert normalize([(outs, vec.last_drop_reason, None)]) == normalize(
            [(ref.process(pkts[0].copy(), 1), ref.last_drop_reason, None)]
        )

    def test_scan_limit_forces_per_lane_lookup(self, monkeypatch):
        """Past VECTOR_SCAN_LIMIT entries, lookups go per-lane through
        the runtime's own index — same slots, same verdicts."""
        monkeypatch.setattr(vector_mod, "VECTOR_SCAN_LIMIT", 0)
        pkts = corpus(64)
        got = normalize(run_batch(build("vector"), pkts))
        want = normalize(run_batch(build("codegen"), pkts))
        assert got == want

    def test_table_mutation_rebuilds_index(self):
        """Adding an entry bumps TableRuntime.version; the next batch
        sees it (stale compiled lookups would keep missing)."""
        new_entries = [
            ("ipv4_lpm_tbl", [(ip4("172.16.0.0"), 16)], "process", [12]),
            ("forward_tbl", [12], "forward", [mac(MAC_A), mac(MAC_B), 5]),
        ]
        vec = build("vector", entries=True)
        pkts = [eth_ipv4(dst="172.16.0.9")] * 4  # not in ENTRY_SETS
        before = normalize(run_batch(vec, pkts))
        api = RuntimeAPI(vec)
        for table, matches, action, args in new_entries:
            api.add_entry(table, matches, action, args)
        after = normalize(run_batch(vec, pkts))
        assert before != after
        ref = build("codegen", entries=True)
        api_ref = RuntimeAPI(ref)
        for table, matches, action, args in new_entries:
            api_ref.add_entry(table, matches, action, args)
        assert after == normalize(run_batch(ref, pkts))


class TestNumpyOptional:
    def test_without_numpy_reason_coded(self, monkeypatch):
        monkeypatch.setattr(vector_mod, "_np", None)
        with pytest.raises(TargetError) as exc:
            VectorPipeline(build_pipeline("P1"))
        assert exc.value.code == "vector-unavailable"
        assert "numpy" in str(exc.value)

    def test_other_backends_unaffected(self, monkeypatch):
        monkeypatch.setattr(vector_mod, "_np", None)
        for backend in ("interp", "compiled", "codegen"):
            inst = make_pipeline(build_pipeline("P1"), exec_backend=backend)
            assert inst.process(eth_ipv4().copy(), 1) is not None

    def test_module_imports_without_numpy(self):
        # The guard is data, not control flow: NUMPY_AVAILABLE mirrors _np.
        assert NUMPY_AVAILABLE == (vector_mod._np is not None)


@needs_numpy
class TestShardedParity:
    def test_sharded_digest_matches_interp(self):
        from repro.targets.engine import EngineConfig

        digests = {}
        for backend in ("interp", "vector"):
            summary = run_soak(
                SoakConfig(
                    programs=["P4"], packets=600, seed=21, fault_rate=0.1,
                    exec_backend=backend,
                ),
                engine=EngineConfig(workers=2),
            )
            assert summary["ok"]
            digests[backend] = summary["digest"]
        assert digests["vector"] == digests["interp"]


class TestBatchLanes:
    def test_validate_rejects_bad_lane_count(self):
        for bad in (0, -4, "many", 2.5, False):
            config = SoakConfig(batch_lanes=bad)
            with pytest.raises(TargetError) as exc:
                config.validate()
            assert exc.value.code == "bad-batch-lanes"

    def test_default_passes_validation(self):
        config = SoakConfig()
        config.validate()
        assert config.batch_lanes == 256

    @needs_numpy
    def test_digest_invariant_under_lane_count(self):
        digests = {
            lanes: soak_program(
                SoakConfig(
                    programs=["P4"], packets=400, seed=11, fault_rate=0.1,
                    exec_backend="vector", batch_lanes=lanes,
                ),
                "P4",
            )["digest"]
            for lanes in (16, 256)
        }
        assert len(set(digests.values())) == 1, digests

    def test_summary_reports_lanes(self):
        summary = run_soak(
            SoakConfig(
                programs=["P1"], packets=50, seed=3, fault_rate=0.0,
                batch_lanes=64,
            )
        )
        assert summary["soak"]["batch_lanes"] == 64


class TestBuildCache:
    def test_in_process_cache_hit(self, metrics):
        from repro.targets import codegen as codegen_mod

        composed = build_pipeline("P2")
        METRICS.reset()
        first = codegen_mod.CodegenPipeline(composed)
        snap = METRICS.snapshot()["counters"]
        # Either a fresh compile (miss) or a disk hit from a prior run.
        assert snap.get("codegen.build_cache_misses", 0) + snap.get(
            "codegen.build_cache_hits", 0
        ) == 1
        METRICS.reset()
        second = codegen_mod.CodegenPipeline(composed)
        snap = METRICS.snapshot()["counters"]
        assert snap.get("codegen.build_cache_hits") == 1
        assert first.source == second.source

    def test_cache_disabled_by_env(self, monkeypatch):
        from repro.targets import codegen as codegen_mod

        monkeypatch.setenv("REPRO_CODEGEN_CACHE", "0")
        assert codegen_mod._disk_cache_dir() is None

    @needs_numpy
    def test_vector_reports_vector_metrics(self, metrics):
        """The inherited metric family is backend-prefixed: the same
        generated code reports vector.* under the vector backend."""
        vec = build("vector")
        METRICS.reset()
        vec.process(eth_ipv4(dst="10.1.1.1").copy(), 1)
        snap = METRICS.snapshot()["counters"]
        assert snap.get("vector.packets") == 1
        assert "codegen.packets" not in snap
