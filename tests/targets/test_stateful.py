"""Stateful processing (paper §8.2 extension): registers + recirculate.

The paper leaves stateful externs as future work ("µP4 can be extended
to support static variables which µP4C can map to architecture-specific
constructs such as registers"); this reproduction implements that
extension: a ``register`` logical extern with read/write methods whose
state persists across packets, and the ``recirculate`` logical extern.
"""

import pytest

from repro.core.api import build_dataplane, compile_module
from repro.net.build import PacketBuilder

COUNTER_SRC = """
header eth_h { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
struct hdr_t { eth_h eth; }

program PortCounter : implements Unicast<> {
  parser P(extractor ex, pkt p, out hdr_t h) {
    state start { ex.extract(p, h.eth); transition accept; }
  }
  control C(pkt p, inout hdr_t h, im_t im) {
    register() seen;
    apply {
      bit<16> count;
      bit<32> port;
      port = (bit<32>) im.get_in_port();
      seen.read(count, port);
      count = count + 1;
      seen.write(port, (bit<16>) count);
      // Export the count in the source MAC for observability.
      h.eth.srcMac = (bit<48>) count;
      im.set_out_port(2);
    }
  }
  control D(emitter em, pkt p, in hdr_t h) {
    apply { em.emit(p, h.eth); }
  }
}
PortCounter(P, C, D) main;
"""

RECIRC_SRC = """
header tag_h { bit<8> hops; }
struct hdr_t { tag_h tag; }

program HopLoop : implements Unicast<> {
  parser P(extractor ex, pkt p, out hdr_t h) {
    state start { ex.extract(p, h.tag); transition accept; }
  }
  control C(pkt p, inout hdr_t h, im_t im) {
    apply {
      if (h.tag.hops < 3) {
        h.tag.hops = h.tag.hops + 1;
        recirculate(h.tag.hops);
      } else {
        im.set_out_port(7);
      }
    }
  }
  control D(emitter em, pkt p, in hdr_t h) {
    apply { em.emit(p, h.tag); }
  }
}
HopLoop(P, C, D) main;
"""


def eth_pkt():
    return (
        PacketBuilder()
        .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x0800)
        .payload(b"x")
        .build()
    )


class TestRegisters:
    @pytest.fixture()
    def counter(self):
        return build_dataplane(compile_module(COUNTER_SRC, "counter.up4"))

    def read_count(self, out):
        from repro.net.build import dissect, layer_fields

        return layer_fields(dissect(out.packet), "ethernet")["srcAddr"]

    def test_state_persists_across_packets(self, counter):
        counts = [
            self.read_count(counter.inject(eth_pkt(), in_port=1)[0])
            for _ in range(3)
        ]
        assert counts == [1, 2, 3]

    def test_state_indexed_per_port(self, counter):
        counter.inject(eth_pkt(), in_port=1)
        counter.inject(eth_pkt(), in_port=1)
        out = counter.inject(eth_pkt(), in_port=5)[0]
        assert self.read_count(out) == 1  # port 5 has its own cell

    def test_separate_instances_isolated(self):
        a = build_dataplane(compile_module(COUNTER_SRC, "a.up4"))
        b = build_dataplane(compile_module(COUNTER_SRC, "b.up4"))
        a.inject(eth_pkt(), in_port=1)
        out = b.inject(eth_pkt(), in_port=1)[0]
        assert self.read_count(out) == 1

    def test_backend_sees_register_dependency(self):
        """The register read feeds a later write of the same packet —
        the TNA scheduler must order the dependent statements."""
        from repro.backend.tna import TnaBackend
        from repro.core.driver import CompilerOptions, Up4Compiler

        compiler = Up4Compiler(CompilerOptions(target="tna"))
        module = compiler.frontend(COUNTER_SRC, "counter.up4")
        result = compiler.compile_modules(module)
        assert result.target_output.num_stages >= 2


class TestRecirculate:
    def test_packet_loops_until_condition(self):
        dp = build_dataplane(compile_module(RECIRC_SRC, "hoploop.up4"))
        from repro.net.packet import Packet

        outs = dp.inject(Packet(b"\x00payload"), in_port=1)
        assert len(outs) == 1
        assert outs[0].port == 7
        assert outs[0].packet.read(0, 1) == b"\x03"  # three recirculations

    def test_already_done_does_not_recirculate(self):
        dp = build_dataplane(compile_module(RECIRC_SRC, "hoploop.up4"))
        from repro.net.packet import Packet

        outs = dp.inject(Packet(b"\x03payload"), in_port=1)
        assert outs[0].packet.read(0, 1) == b"\x03"

    def test_recirculation_limit_contained(self):
        from repro.net.packet import Packet

        endless = RECIRC_SRC.replace("h.tag.hops < 3", "h.tag.hops < 255")
        dp = build_dataplane(compile_module(endless, "endless.up4"))
        verdict = dp.switch.process(Packet(b"\x00"), in_port=1)
        assert verdict.outputs == []
        assert verdict.reasons == {"recirc-limit": 1}
        assert verdict.balanced()
        assert dp.switch.drops_by_reason["recirc-limit"] == 1

    def test_recirculation_limit_strict_raises(self):
        from repro.errors import TargetError
        from repro.net.packet import Packet

        endless = RECIRC_SRC.replace("h.tag.hops < 3", "h.tag.hops < 255")
        dp = build_dataplane(compile_module(endless, "endless.up4"))
        dp.switch.strict = True
        with pytest.raises(TargetError):
            dp.inject(Packet(b"\x00"), in_port=1)
