"""Supervisor state machine, restart policy, and chaos-plan parsing."""

import pytest

from repro.errors import TargetError
from repro.targets.engine import EngineConfig
from repro.targets.faults import ChaosPlan
from repro.targets.supervision import RestartPolicy, Supervisor


class TestRestartPolicy:
    def test_defaults_validate(self):
        RestartPolicy().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("max_restarts_per_shard", -1),
            ("restart_budget", -2),
            ("backoff_base_s", -0.1),
            ("backoff_max_s", -1.0),
            ("jitter", -0.5),
        ],
    )
    def test_negative_fields_rejected(self, field, value):
        with pytest.raises(TargetError):
            RestartPolicy(**{field: value}).validate()

    def test_zero_policy_means_fail_fast(self):
        # 0 restarts is valid: the first failure abandons immediately.
        policy = RestartPolicy(max_restarts_per_shard=0, restart_budget=0)
        policy.validate()
        sup = Supervisor(policy, 1234, "P4", workers=2)
        assert sup.decide(0, "died") == Supervisor.ABANDON

    def test_to_dict_round_trip(self):
        policy = RestartPolicy(max_restarts_per_shard=5, jitter=0.0)
        as_dict = policy.to_dict()
        assert RestartPolicy(**as_dict) == policy


class TestSupervisor:
    def test_restart_until_per_shard_budget_then_abandon(self):
        sup = Supervisor(RestartPolicy(max_restarts_per_shard=2), 1, "P4", 2)
        assert sup.decide(0, "died") == Supervisor.RESTART
        assert sup.decide(0, "died") == Supervisor.RESTART
        assert sup.decide(0, "died") == Supervisor.ABANDON
        assert sup.abandoned == {0}
        assert sup.restarts[0] == 2
        assert sup.attempts[0] == 3
        assert sup.degraded

    def test_run_level_budget_spans_shards(self):
        policy = RestartPolicy(max_restarts_per_shard=10, restart_budget=2)
        sup = Supervisor(policy, 1, "P4", 4)
        assert sup.decide(0, "died") == Supervisor.RESTART
        assert sup.decide(1, "died") == Supervisor.RESTART
        # Budget spent: any further failure abandons, whatever the shard.
        assert sup.decide(2, "died") == Supervisor.ABANDON
        assert sup.total_restarts == 2

    def test_ack_is_monotone_max(self):
        sup = Supervisor(RestartPolicy(), 1, "P4", 1)
        sup.ack(0, 100)
        sup.ack(0, 50)  # late, lower ack must not regress the watermark
        sup.ack(0, None)
        assert sup.watermarks[0] == 100
        sup.ack(0, 200)
        assert sup.watermarks[0] == 200

    def test_events_record_the_history(self):
        sup = Supervisor(RestartPolicy(max_restarts_per_shard=1), 1, "P4", 2)
        sup.ack(0, 42)
        sup.decide(0, "ring-stall", {"error": "full"})
        sup.decide(0, "died", {"exitcode": -9})
        kinds = [e["event"] for e in sup.events]
        assert kinds == [Supervisor.RESTART, Supervisor.ABANDON]
        assert sup.events[0]["watermark"] == 42
        assert sup.last_failure[0]["reason"] == "died"
        summary = sup.summary()
        assert summary["abandoned"] == [0]
        assert summary["restarts"] == {"0": 1}
        assert summary["watermarks"]["0"] == 42

    def test_backoff_is_deterministic_and_capped(self):
        def delays(seed):
            sup = Supervisor(
                RestartPolicy(backoff_base_s=0.1, backoff_max_s=0.3,
                              max_restarts_per_shard=10),
                seed, "P4", 1,
            )
            out = []
            for _ in range(4):
                sup.decide(0, "died")
                out.append(sup.backoff_s(0))
            return out

        first, second = delays(1234), delays(1234)
        assert first == second  # seeded jitter replays exactly
        assert delays(99) != first  # but differs across seeds
        assert all(d <= 0.3 for d in first)  # jitter never exceeds the cap
        assert first[0] < first[1] or first[1] == 0.3  # exponential ramp

    def test_no_backoff_before_any_restart(self):
        sup = Supervisor(RestartPolicy(), 1, "P4", 1)
        assert sup.backoff_s(0) == 0.0


class TestChaosPlan:
    def test_parse_kill(self):
        plan = ChaosPlan.from_specs("kill:shard=1@pkt=500")
        assert len(plan) == 1
        event = plan.events[0]
        assert (event.action, event.shard, event.pkt) == ("kill", 1, 500)

    def test_parse_stop_with_resume(self):
        plan = ChaosPlan.from_specs("stop:shard=0@pkt=10@resume=0.5")
        assert plan.events[0].resume_s == 0.5

    def test_parse_stall_with_duration_and_attempt(self):
        plan = ChaosPlan.from_specs("stall:shard=2@pkt=7@for=0.2@attempt=2")
        event = plan.events[0]
        assert (event.stall_s, event.attempt) == (0.2, 2)

    def test_parse_list_of_specs(self):
        plan = ChaosPlan.from_specs(
            ["kill:shard=0@pkt=5", "kill:shard=0@pkt=50"]
        )
        assert len(plan) == 2

    @pytest.mark.parametrize(
        "spec",
        [
            "boom:shard=0@pkt=1",       # unknown action
            "kill:shard=0",             # missing pkt
            "kill:pkt=5",               # missing shard
            "kill:shard=x@pkt=5",       # non-integer
            "kill:shard=-1@pkt=5",      # negative shard
            "kill:shard=0@pkt=5@wat=1", # unknown field
            "kill",                     # no fields at all
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(TargetError):
            ChaosPlan.from_specs(spec)

    def test_event_routing_and_reset(self):
        plan = ChaosPlan.from_specs(
            ["kill:shard=0@pkt=5", "stall:shard=1@pkt=9@for=0.1"]
        )
        assert [e.action for e in plan.parent_events()] == ["kill"]
        assert plan.worker_stalls(1, attempt=1) == [(9, 0.1)]
        assert plan.worker_stalls(1, attempt=2) == []  # attempt-filtered
        assert plan.worker_stalls(0, attempt=1) == []  # other shard
        for event in plan.events:
            event.fired = True
        plan.reset()
        assert not any(event.fired for event in plan.events)


class TestEngineConfigChaosValidation:
    def test_chaos_requires_dispatch_ingest(self):
        plan = ChaosPlan.from_specs("kill:shard=0@pkt=1")
        with pytest.raises(TargetError):
            EngineConfig(workers=2, ingest="replay", chaos=plan).validate()

    def test_chaos_requires_parallel_run(self):
        plan = ChaosPlan.from_specs("kill:shard=0@pkt=1")
        with pytest.raises(TargetError):
            EngineConfig(workers=2, sequential=True, chaos=plan).validate()

    def test_chaos_shard_must_exist(self):
        plan = ChaosPlan.from_specs("kill:shard=5@pkt=1")
        with pytest.raises(TargetError):
            EngineConfig(workers=2, chaos=plan).validate()
        EngineConfig(workers=6, chaos=plan).validate()

    def test_restart_policy_validated_through_engine(self):
        with pytest.raises(TargetError):
            EngineConfig(
                workers=2, restart=RestartPolicy(restart_budget=-1)
            ).validate()
