"""Soak harness: containment invariants hold under hostile traffic."""

import json

from repro.targets.soak import SoakConfig, render_summary, run_soak, soak_program


def quick_config(**kw):
    kw.setdefault("programs", ["P4"])
    kw.setdefault("packets", 1500)
    kw.setdefault("seed", 99)
    kw.setdefault("fault_rate", 0.2)
    return SoakConfig(**kw)


class TestInvariants:
    def test_no_uncaught_and_exact_ledger(self):
        summary = run_soak(quick_config())
        assert summary["ok"]
        block = summary["programs"]["P4"]
        assert block["uncaught"] == []
        assert block["unbalanced_verdicts"] == 0
        assert block["ledger_ok"]
        assert block["units"] == block["emits"] + block["drops"]
        assert block["packets"] == 1500

    def test_fault_free_run_is_clean_too(self):
        block = soak_program(quick_config(fault_rate=0.0), "P4")
        assert block["uncaught"] == []
        assert block["ledger_ok"]
        assert block["fault_trips"] == {}

    def test_mono_mode_surfaces_truncated_extract(self):
        block = soak_program(quick_config(mode="mono"), "P4")
        assert block["ledger_ok"]
        # The corpus truncates valid packets; the native parser must
        # contain those as truncated-extract drops, not exceptions.
        assert block["drops_by_reason"].get("truncated-extract", 0) > 0

    def test_faults_actually_fire(self):
        block = soak_program(quick_config(), "P4")
        assert sum(block["fault_trips"].values()) > 0
        assert block["drops"] > 0

    def test_summary_is_json_able(self):
        summary = run_soak(quick_config(packets=200))
        text = json.dumps(summary)
        assert json.loads(text)["ok"] is True

    def test_render_summary_mentions_result(self):
        summary = run_soak(quick_config(packets=200))
        text = render_summary(summary)
        assert "result: OK" in text
        assert "accounting:" in text


class TestDeterminism:
    def test_same_seed_same_digest(self):
        a = run_soak(quick_config())
        b = run_soak(quick_config())
        assert a["digest"] == b["digest"]
        assert (
            a["programs"]["P4"]["drops_by_reason"]
            == b["programs"]["P4"]["drops_by_reason"]
        )
        assert a["programs"]["P4"]["fault_trips"] == b["programs"]["P4"]["fault_trips"]

    def test_different_seed_different_digest(self):
        a = run_soak(quick_config(seed=99))
        b = run_soak(quick_config(seed=100))
        assert a["digest"] != b["digest"]

    def test_fault_spec_overrides_rate(self):
        config = quick_config(
            fault_spec={"sites": {"table:ipv4_lpm_tbl": 1.0}}, packets=300
        )
        block = soak_program(config, "P4")
        assert block["ledger_ok"]
        trips = block["fault_trips"]
        assert set(trips) == {"table:ipv4_lpm_tbl"}
        assert block["drops_by_reason"].get("extern-fault", 0) == trips[
            "table:ipv4_lpm_tbl"
        ]

    def test_digest_ignores_wall_clock(self, monkeypatch):
        """The digest covers only the verdict stream: two same-seed runs
        with wildly different timings must agree bit-for-bit."""
        import repro.targets.soak as soak_mod

        baseline = soak_program(quick_config(packets=300), "P4")

        ticks = iter(range(0, 10_000_000, 37))

        def jittery_clock():
            # Strictly increasing but absurd: every call jumps 37s.
            return float(next(ticks))

        monkeypatch.setattr(soak_mod.time, "perf_counter", jittery_clock)
        jittered = soak_program(quick_config(packets=300), "P4")
        assert jittered["elapsed_s"] != baseline["elapsed_s"]
        assert jittered["digest"] == baseline["digest"]

    def test_routable_traffic_is_deterministic_and_forwards(self):
        config = quick_config(packets=300, fault_rate=0.0, traffic="routable")
        a = soak_program(config, "P4")
        b = soak_program(config, "P4")
        assert a["digest"] == b["digest"]
        assert a["ledger_ok"]
        # Routable traffic keeps packets on the table fast path: most
        # should actually forward rather than drop.
        assert a["emits"] > a["packets"] // 2

    def test_unknown_traffic_mix_rejected(self):
        import pytest

        from repro.errors import TargetError

        with pytest.raises(TargetError, match="unknown traffic mix"):
            soak_program(quick_config(traffic="jumbo"), "P4")
