"""Unit tests for the match-action table runtime."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TargetError
from repro.frontend import astnodes as ast
from repro.targets.tables import TableRuntime


def make_table(match_kinds, actions=("hit", "miss"), entries=(), default="miss"):
    keys = []
    for kind in match_kinds:
        expr = ast.PathExpr(name=f"k{len(keys)}")
        expr.type = ast.BitType(width=32)
        keys.append(ast.KeyElement(expr=expr, match_kind=kind))
    decl = ast.TableDecl(
        name="t",
        keys=keys,
        actions=list(actions),
        default_action=default,
        const_entries=list(entries),
    )
    return TableRuntime(decl)


class TestExact:
    def test_hit_and_miss(self):
        t = make_table(["exact"])
        t.add_entry([5], "hit", [1])
        assert t.lookup([5]) == ("hit", [1], True)
        assert t.lookup([6]) == ("miss", [], False)

    def test_first_match_priority(self):
        t = make_table(["exact"])
        t.add_entry([5], "hit", [1])
        t.add_entry([5], "hit", [2])
        assert t.lookup([5])[1] == [1]

    def test_explicit_priority(self):
        t = make_table(["exact"])
        t.add_entry([5], "hit", [1], priority=0)
        t.add_entry([5], "hit", [2], priority=10)
        assert t.lookup([5])[1] == [2]


class TestLpm:
    def test_longest_prefix_wins(self):
        t = make_table(["lpm"])
        t.add_entry([(0x0A000000, 8)], "hit", [1])
        t.add_entry([(0x0A010000, 16)], "hit", [2])
        assert t.lookup([0x0A010203])[1] == [2]
        assert t.lookup([0x0A020304])[1] == [1]

    def test_zero_length_prefix_matches_all(self):
        t = make_table(["lpm"])
        t.add_entry([(0, 0)], "hit", [9])
        assert t.lookup([0xFFFFFFFF])[1] == [9]

    @given(st.integers(0, 2**32 - 1))
    def test_full_prefix_is_exact(self, addr):
        t = make_table(["lpm"])
        t.add_entry([(addr, 32)], "hit", [1])
        hit = t.lookup([addr])
        assert hit[0] == "hit"
        assert t.lookup([(addr + 1) % 2**32])[0] == "miss"


class TestTernary:
    def test_mask_match(self):
        t = make_table(["ternary"])
        t.add_entry([(0x0800, 0xFF00)], "hit", [1])
        assert t.lookup([0x08AB])[0] == "hit"
        assert t.lookup([0x0700])[0] == "miss"

    def test_dont_care(self):
        t = make_table(["ternary", "exact"])
        t.add_entry([None, 7], "hit", [1])
        assert t.lookup([12345, 7])[0] == "hit"
        assert t.lookup([12345, 8])[0] == "miss"


class TestRange:
    def test_inclusive_bounds(self):
        t = make_table(["range"])
        t.add_entry([(10, 20)], "hit", [1])
        assert t.lookup([10])[0] == "hit"
        assert t.lookup([20])[0] == "hit"
        assert t.lookup([9])[0] == "miss"
        assert t.lookup([21])[0] == "miss"


class TestManagement:
    def test_arity_checked(self):
        t = make_table(["exact", "exact"])
        with pytest.raises(TargetError):
            t.add_entry([1], "hit")

    def test_unknown_action_rejected(self):
        t = make_table(["exact"])
        with pytest.raises(TargetError):
            t.add_entry([1], "fly")

    def test_set_default(self):
        t = make_table(["exact"])
        t.set_default("hit", [42])
        assert t.lookup([0]) == ("hit", [42], False)

    def test_clear(self):
        t = make_table(["exact"])
        t.add_entry([5], "hit")
        t.clear_runtime_entries()
        assert t.lookup([5])[0] == "miss"

    def test_const_entries_precede_runtime(self):
        entry = ast.TableEntry(
            keysets=[ast.IntLit(value=5, width=32)],
            action_name="hit",
            action_args=[ast.IntLit(value=1)],
        )
        t = make_table(["exact"], entries=[entry])
        t.add_entry([5], "hit", [2])
        assert t.lookup([5])[1] == [1]
