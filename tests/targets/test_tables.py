"""Unit tests for the match-action table runtime."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TargetError
from repro.frontend import astnodes as ast
from repro.targets.tables import TableRuntime


def make_table(match_kinds, actions=("hit", "miss"), entries=(), default="miss"):
    keys = []
    for kind in match_kinds:
        expr = ast.PathExpr(name=f"k{len(keys)}")
        expr.type = ast.BitType(width=32)
        keys.append(ast.KeyElement(expr=expr, match_kind=kind))
    decl = ast.TableDecl(
        name="t",
        keys=keys,
        actions=list(actions),
        default_action=default,
        const_entries=list(entries),
    )
    return TableRuntime(decl)


class TestExact:
    def test_hit_and_miss(self):
        t = make_table(["exact"])
        t.add_entry([5], "hit", [1])
        assert t.lookup([5]) == ("hit", [1], True)
        assert t.lookup([6]) == ("miss", [], False)

    def test_first_match_priority(self):
        t = make_table(["exact"])
        t.add_entry([5], "hit", [1])
        t.add_entry([5], "hit", [2])
        assert t.lookup([5])[1] == [1]

    def test_explicit_priority(self):
        t = make_table(["exact"])
        t.add_entry([5], "hit", [1], priority=0)
        t.add_entry([5], "hit", [2], priority=10)
        assert t.lookup([5])[1] == [2]


class TestLpm:
    def test_longest_prefix_wins(self):
        t = make_table(["lpm"])
        t.add_entry([(0x0A000000, 8)], "hit", [1])
        t.add_entry([(0x0A010000, 16)], "hit", [2])
        assert t.lookup([0x0A010203])[1] == [2]
        assert t.lookup([0x0A020304])[1] == [1]

    def test_zero_length_prefix_matches_all(self):
        t = make_table(["lpm"])
        t.add_entry([(0, 0)], "hit", [9])
        assert t.lookup([0xFFFFFFFF])[1] == [9]

    @given(st.integers(0, 2**32 - 1))
    def test_full_prefix_is_exact(self, addr):
        t = make_table(["lpm"])
        t.add_entry([(addr, 32)], "hit", [1])
        hit = t.lookup([addr])
        assert hit[0] == "hit"
        assert t.lookup([(addr + 1) % 2**32])[0] == "miss"


class TestTernary:
    def test_mask_match(self):
        t = make_table(["ternary"])
        t.add_entry([(0x0800, 0xFF00)], "hit", [1])
        assert t.lookup([0x08AB])[0] == "hit"
        assert t.lookup([0x0700])[0] == "miss"

    def test_dont_care(self):
        t = make_table(["ternary", "exact"])
        t.add_entry([None, 7], "hit", [1])
        assert t.lookup([12345, 7])[0] == "hit"
        assert t.lookup([12345, 8])[0] == "miss"


class TestRange:
    def test_inclusive_bounds(self):
        t = make_table(["range"])
        t.add_entry([(10, 20)], "hit", [1])
        assert t.lookup([10])[0] == "hit"
        assert t.lookup([20])[0] == "hit"
        assert t.lookup([9])[0] == "miss"
        assert t.lookup([21])[0] == "miss"


class TestManagement:
    def test_arity_checked(self):
        t = make_table(["exact", "exact"])
        with pytest.raises(TargetError):
            t.add_entry([1], "hit")

    def test_unknown_action_rejected(self):
        t = make_table(["exact"])
        with pytest.raises(TargetError):
            t.add_entry([1], "fly")

    def test_set_default(self):
        t = make_table(["exact"])
        t.set_default("hit", [42])
        assert t.lookup([0]) == ("hit", [42], False)

    def test_clear(self):
        t = make_table(["exact"])
        t.add_entry([5], "hit")
        t.clear_runtime_entries()
        assert t.lookup([5])[0] == "miss"

    def test_const_entries_precede_runtime(self):
        entry = ast.TableEntry(
            keysets=[ast.IntLit(value=5, width=32)],
            action_name="hit",
            action_args=[ast.IntLit(value=1)],
        )
        t = make_table(["exact"], entries=[entry])
        t.add_entry([5], "hit", [2])
        assert t.lookup([5])[1] == [1]


class TestLpmTieBreak:
    """Equal prefix lengths fall back to the first-match priority order:
    const before runtime, then priority, then insertion order."""

    def test_const_beats_runtime_at_equal_length(self):
        entry = ast.TableEntry(
            keysets=[ast.IntLit(value=0x0A000000, width=32)],
            action_name="hit",
            action_args=[ast.IntLit(value=1)],
        )
        t = make_table(["lpm"], entries=[entry])  # const is a /32
        t.add_entry([(0x0A000000, 32)], "hit", [2])
        assert t.lookup([0x0A000000])[1] == [1]
        assert t.lookup_scan_full([0x0A000000])[1] == [1]

    def test_priority_breaks_equal_length_ties(self):
        t = make_table(["lpm"])
        t.add_entry([(0x0A000000, 8)], "hit", [1], priority=0)
        t.add_entry([(0x0A000000, 8)], "hit", [2], priority=10)
        assert t.lookup([0x0A112233])[1] == [2]
        assert t.lookup_scan_full([0x0A112233])[1] == [2]

    def test_insertion_order_breaks_remaining_ties(self):
        t = make_table(["lpm"])
        t.add_entry([(0x0A000000, 8)], "hit", [1])
        t.add_entry([(0x0A000000, 8)], "hit", [2])
        assert t.lookup([0x0A112233])[1] == [1]
        assert t.lookup_scan_full([0x0A112233])[1] == [1]

    def test_longer_prefix_still_beats_priority(self):
        t = make_table(["lpm"])
        t.add_entry([(0x0A000000, 8)], "hit", [1], priority=99)
        t.add_entry([(0x0A010000, 16)], "hit", [2], priority=0)
        assert t.lookup([0x0A010203])[1] == [2]


class TestEntryValidation:
    def test_overlong_lpm_prefix_rejected(self):
        t = make_table(["lpm"])
        with pytest.raises(TargetError, match="prefix length 33"):
            t.add_entry([(0x0A000000, 33)], "hit")

    def test_negative_lpm_prefix_rejected(self):
        t = make_table(["lpm"])
        with pytest.raises(TargetError, match="prefix length"):
            t.add_entry([(0x0A000000, -1)], "hit")

    def test_exact_value_masked_to_key_width(self):
        t = make_table(["exact"])
        t.add_entry([(1 << 40) | 5], "hit", [1])
        assert t.lookup([5])[0] == "hit"

    def test_ternary_value_and_mask_masked(self):
        t = make_table(["ternary"])
        t.add_entry([((1 << 40) | 0x0800, (1 << 40) | 0xFF00)], "hit", [1])
        assert t.lookup([0x08AB])[0] == "hit"

    def test_empty_range_after_masking_rejected(self):
        t = make_table(["range"])
        with pytest.raises(TargetError, match="empty range"):
            t.add_entry([(10, (1 << 32) + 5)], "hit")


class TestKeyValidation:
    def test_untyped_key_expr_rejected(self):
        expr = ast.PathExpr(name="mystery")  # no .type annotation
        decl = ast.TableDecl(
            name="t",
            keys=[ast.KeyElement(expr=expr, match_kind="exact")],
            actions=["hit"],
        )
        with pytest.raises(TargetError, match="'mystery'"):
            TableRuntime(decl)

    @pytest.mark.parametrize("kind", ["exact", "lpm", "range"])
    def test_mask_keyset_only_valid_on_ternary(self, kind):
        entry = ast.TableEntry(
            keysets=[
                ast.MaskExpr(
                    value=ast.IntLit(value=0x0800), mask=ast.IntLit(value=0xFF00)
                )
            ],
            action_name="hit",
        )
        with pytest.raises(TargetError, match="mask keyset"):
            make_table([kind], entries=[entry])

    @pytest.mark.parametrize("kind", ["exact", "lpm", "ternary"])
    def test_range_keyset_only_valid_on_range(self, kind):
        entry = ast.TableEntry(
            keysets=[
                ast.RangeExpr(lo=ast.IntLit(value=1), hi=ast.IntLit(value=9))
            ],
            action_name="hit",
        )
        with pytest.raises(TargetError, match="range keyset"):
            make_table([kind], entries=[entry])

    def test_mask_keyset_on_ternary_still_works(self):
        entry = ast.TableEntry(
            keysets=[
                ast.MaskExpr(
                    value=ast.IntLit(value=0x0800), mask=ast.IntLit(value=0xFF00)
                )
            ],
            action_name="hit",
            action_args=[ast.IntLit(value=1)],
        )
        t = make_table(["ternary"], entries=[entry])
        assert t.lookup([0x08AB])[0] == "hit"


class TestIndexing:
    def test_strategies_by_match_kind(self):
        assert make_table(["exact", "exact"]).index_info()["strategy"] == "exact-hash"
        assert make_table(["lpm", "exact"]).index_info()["strategy"] == "lpm-buckets"
        assert make_table(["ternary"]).index_info()["strategy"] == "compiled-scan"
        assert make_table(["range", "lpm"]).index_info()["strategy"] == "compiled-scan"
        assert make_table(["lpm", "lpm"]).index_info()["strategy"] == "compiled-scan"

    def test_add_entry_invalidates_index(self):
        t = make_table(["exact"])
        t.add_entry([1], "hit", [1])
        assert t.lookup([2])[0] == "miss"  # index built here
        t.add_entry([2], "hit", [2])
        assert t.lookup([2])[1] == [2]

    def test_clear_invalidates_index(self):
        t = make_table(["exact"])
        t.add_entry([1], "hit", [1])
        assert t.lookup([1])[0] == "hit"
        t.clear_runtime_entries()
        assert t.lookup([1])[0] == "miss"

    def test_dont_care_residual_keeps_priority_order(self):
        t = make_table(["exact"])
        t.add_entry([None], "hit", [1], priority=5)  # wildcard, residual
        t.add_entry([7], "hit", [2], priority=0)  # hashed
        assert t.lookup([7])[1] == [1]  # higher priority wins
        assert t.lookup([8])[1] == [1]
        assert t.lookup_scan_full([7])[1] == [1]

    def test_hashed_entry_before_residual_wins(self):
        t = make_table(["exact"])
        t.add_entry([7], "hit", [2])
        t.add_entry([None], "hit", [1])
        assert t.lookup([7])[1] == [2]
        assert t.lookup([8])[1] == [1]

    def test_lpm_wildcard_acts_as_zero_length(self):
        t = make_table(["lpm"])
        t.add_entry([None], "hit", [1])
        t.add_entry([(0x0A000000, 8)], "hit", [2])
        assert t.lookup([0x0A112233])[1] == [2]
        assert t.lookup([0x0B000000])[1] == [1]

    def test_lpm_with_exact_cokey(self):
        t = make_table(["lpm", "exact"])
        t.add_entry([(0x0A000000, 8), 1], "hit", [1])
        t.add_entry([(0x0A010000, 16), 2], "hit", [2])
        assert t.lookup([0x0A010203, 1])[1] == [1]
        assert t.lookup([0x0A010203, 2])[1] == [2]
        assert t.lookup([0x0A010203, 3])[0] == "miss"

    def test_scan_reference_disabled_index(self):
        expr = ast.PathExpr(name="k0")
        expr.type = ast.BitType(width=32)
        decl = ast.TableDecl(
            name="t",
            keys=[ast.KeyElement(expr=expr, match_kind="exact")],
            actions=["hit", "miss"],
            default_action="miss",
        )
        t = TableRuntime(decl, use_index=False)
        t.add_entry([5], "hit", [1])
        assert t.index_info()["strategy"] == "reference-scan"
        assert t.lookup([5]) == ("hit", [1], True)
