"""Sharded traffic engine: determinism, merging, and failure handling.

The load-bearing properties:

* a 1-worker engine run reproduces the inline ``soak_program`` digest
  bit-for-bit (at fault_rate=0, where fault-seed derivation is moot);
* the merged digest is a pure function of ``(seed, workers,
  shard_policy)`` — replayable, and independent of whether the workers
  ran concurrently or one at a time;
* merged accounting is exact: shard ledgers balance individually and
  the totals balance after the fold;
* worker metrics start from a reset registry (fork-inheritance
  double-count regression) and fold to exactly the single-process
  counters;
* a failing or dying worker surfaces as a structured
  :class:`EngineError` and never leaves orphan processes.
"""

import multiprocessing
import queue
import threading
import time

import pytest

from repro.errors import TargetError
from repro.obs.metrics import METRICS, collecting
from repro.targets.engine import (
    EngineConfig,
    EngineError,
    _collect,
    _merge_blocks,
    assign_shard,
    run_sharded_program,
    shard_seed,
)
from repro.targets.soak import SoakConfig, run_soak, soak_program


def quick_config(**kw):
    kw.setdefault("programs", ["P4"])
    kw.setdefault("packets", 400)
    kw.setdefault("seed", 99)
    kw.setdefault("fault_rate", 0.2)
    return SoakConfig(**kw)


def no_orphans():
    return multiprocessing.active_children() == []


class TestShardAssignment:
    def test_round_robin_partitions_by_index(self):
        for index in range(40):
            assert assign_shard(index, b"x", 4, "round-robin") == index % 4

    def test_flow_hash_ignores_index(self):
        a = assign_shard(0, b"same packet", 4, "flow-hash")
        b = assign_shard(17, b"same packet", 4, "flow-hash")
        assert a == b

    def test_single_worker_gets_everything(self):
        assert assign_shard(123, b"anything", 1, "flow-hash") == 0

    def test_shard_seed_derivation(self):
        assert shard_seed(99, "P4", 2) == "99:P4:shard2"


class TestConfigValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(TargetError):
            EngineConfig(workers=0).validate()

    def test_unknown_policy_rejected(self):
        with pytest.raises(TargetError):
            EngineConfig(shard_policy="modulo-11").validate()

    def test_unknown_program_fails_in_parent(self):
        with pytest.raises(TargetError, match="unknown soak program"):
            run_sharded_program(quick_config(), "P99", EngineConfig(workers=2))
        assert no_orphans()

    def test_unknown_ingest_rejected(self):
        with pytest.raises(TargetError, match="ingest"):
            EngineConfig(ingest="osmosis").validate()

    def test_tiny_ring_rejected(self):
        with pytest.raises(TargetError, match="ring_bytes"):
            EngineConfig(ring_bytes=100).validate()


class TestDeterminism:
    def test_one_worker_matches_inline_digest(self):
        config = quick_config(fault_rate=0.0)
        inline = soak_program(config, "P4")
        merged = run_sharded_program(config, "P4", EngineConfig(workers=1))
        assert merged["shards"][0]["digest"] == inline["digest"]
        assert merged["packets"] == inline["packets"]
        assert merged["emits"] == inline["emits"]
        assert merged["drops"] == inline["drops"]
        assert merged["units"] == inline["units"]
        assert merged["drops_by_reason"] == inline["drops_by_reason"]

    def test_same_parameters_replay_exactly(self):
        config = quick_config()
        engine = EngineConfig(workers=3)
        a = run_sharded_program(config, "P4", engine)
        b = run_sharded_program(config, "P4", engine)
        assert a["digest"] == b["digest"]
        assert [s["digest"] for s in a["shards"]] == [
            s["digest"] for s in b["shards"]
        ]

    def test_digest_is_a_function_of_workers_and_policy(self):
        config = quick_config()
        w2 = run_sharded_program(config, "P4", EngineConfig(workers=2))
        w3 = run_sharded_program(config, "P4", EngineConfig(workers=3))
        rr = run_sharded_program(
            config, "P4", EngineConfig(workers=2, shard_policy="round-robin")
        )
        assert w2["digest"] != w3["digest"]
        assert w2["digest"] != rr["digest"]

    def test_sequential_equals_concurrent(self):
        config = quick_config()
        conc = run_sharded_program(config, "P4", EngineConfig(workers=2))
        seq = run_sharded_program(
            config, "P4", EngineConfig(workers=2, sequential=True)
        )
        assert seq["digest"] == conc["digest"]
        assert seq["drops_by_reason"] == conc["drops_by_reason"]

    def test_run_soak_engine_summary_is_deterministic(self):
        config = quick_config(packets=300)
        engine = EngineConfig(workers=2)
        a = run_soak(config, engine=engine)
        b = run_soak(config, engine=engine)
        assert a["ok"] and b["ok"]
        assert a["digest"] == b["digest"]
        assert a["soak"]["workers"] == 2


class TestAccounting:
    def test_merged_ledger_is_exact_under_faults(self):
        merged = run_sharded_program(
            quick_config(), "P4", EngineConfig(workers=4)
        )
        assert merged["uncaught"] == []
        assert merged["ledger_ok"]
        assert merged["units"] == merged["emits"] + merged["drops"]
        for shard in merged["shards"]:
            assert shard["ledger_ok"]
            assert shard["units"] == shard["emits"] + shard["drops"]

    def test_shards_partition_the_stream(self):
        config = quick_config(packets=400)
        merged = run_sharded_program(
            config, "P4", EngineConfig(workers=4, shard_policy="round-robin")
        )
        assert [s["packets"] for s in merged["shards"]] == [100, 100, 100, 100]
        assert merged["packets"] == 400

    def test_totals_match_single_process_run(self):
        # Same stream, same per-shard fault rate of zero: the sharded
        # totals must equal the inline run exactly, not approximately.
        config = quick_config(fault_rate=0.0)
        inline = soak_program(config, "P4")
        merged = run_sharded_program(config, "P4", EngineConfig(workers=4))
        for key in ("packets", "emits", "drops", "units", "killed"):
            assert merged[key] == inline[key]
        assert merged["verdicts"] == inline["verdicts"]


class TestMetricsMerging:
    def test_worker_registries_start_clean(self):
        """Fork-inheritance regression: counters recorded in the parent
        before the fork must not reappear in worker snapshots."""
        config = quick_config(fault_rate=0.0)
        try:
            METRICS.reset()
            METRICS.enable()
            METRICS.inc("test.sentinel", 7)
            merged = run_sharded_program(config, "P4", EngineConfig(workers=2))
        finally:
            METRICS.disable()
            METRICS.reset()
        counters = merged["metrics"]["counters"]
        assert "test.sentinel" not in counters
        assert counters.get("switch.units", 0) > 0

    def test_merged_counters_equal_single_process(self):
        config = quick_config(fault_rate=0.0)
        with collecting() as reg:
            inline = soak_program(config, "P4")
        single = {
            k: v
            for k, v in reg.counters.items()
            if k.startswith(("switch.", "interp."))
        }
        merged = run_sharded_program(config, "P4", EngineConfig(workers=3))
        sharded = {
            k: v
            for k, v in merged["metrics"]["counters"].items()
            if k.startswith(("switch.", "interp."))
        }
        assert sharded == single
        assert inline["ledger_ok"]

    def test_metrics_can_be_disabled(self):
        merged = run_sharded_program(
            quick_config(packets=100),
            "P4",
            EngineConfig(workers=2, collect_metrics=False),
        )
        assert "metrics" not in merged


class _FakeProc:
    """Stand-in for a live worker process in direct ``_collect`` tests."""

    exitcode = None

    def is_alive(self):
        return True


def _shard_block(shard: int, packets: int, elapsed_s: float) -> dict:
    return {
        "shard": shard,
        "packets": packets,
        "emits": packets,
        "drops": 0,
        "units": packets,
        "replicated": 0,
        "killed": 0,
        "verdicts": {"emit": packets, "drop": 0, "killed": 0},
        "drops_by_reason": {},
        "fault_trips": {},
        "uncaught": [],
        "unbalanced_verdicts": 0,
        "ledger_ok": True,
        "digest": f"d{shard}",
        "elapsed_s": elapsed_s,
        "pkts_per_sec": None,
    }


class TestWatchdog:
    def test_telemetry_publishes_rearm_the_deadline(self):
        """Regression: the watchdog deadline was fixed at start, so a
        healthy worker publishing telemetry on a long shard still
        tripped 'reported nothing within Ns'.  Any message from a
        pending shard must re-arm it."""
        out_queue = queue.Queue()
        engine = EngineConfig(workers=1, watchdog_s=0.4)
        seen = []

        def feed():
            # Heartbeats at 0.15s intervals for ~3x the watchdog window,
            # then the result: only a deadline that re-arms survives.
            for epoch in range(1, 9):
                time.sleep(0.15)
                out_queue.put(
                    ("telemetry", 0, {"epoch": epoch, "metrics": {}})
                )
            out_queue.put(("ok", 0, {"shard": 0}))

        threading.Thread(target=feed, daemon=True).start()
        results = _collect(
            {0: _FakeProc()}, out_queue, engine,
            on_telemetry=lambda shard, payload: seen.append(payload["epoch"]),
        )
        assert results[0] == {"shard": 0}
        assert seen == list(range(1, 9))

    def test_watchdog_still_trips_when_silent(self):
        out_queue = queue.Queue()
        engine = EngineConfig(workers=1, watchdog_s=0.3)
        start = time.monotonic()
        with pytest.raises(EngineError, match="watchdog"):
            _collect({0: _FakeProc()}, out_queue, engine)
        assert time.monotonic() - start < 5

    def test_watchdog_end_to_end_with_live_publishes(self):
        # A real sharded run whose watchdog window is far shorter than
        # the run itself: per-epoch publishes must keep it alive.
        telemetry_epochs = []

        class Capture:
            def publish(self, program, shard, epoch, metrics, ledger=None,
                        final=False, run=None, watermark=None):
                telemetry_epochs.append((shard, epoch))
                return True

            def record_event(self, event):
                pass

        merged = run_sharded_program(
            quick_config(packets=3000, fault_rate=0.0),
            "P4",
            EngineConfig(workers=2, watchdog_s=1.5, publish_interval_s=0.1),
            telemetry=Capture(),
        )
        assert merged["ledger_ok"]
        assert telemetry_epochs  # the run did publish mid-flight


class TestMergedRates:
    def test_submillisecond_shards_do_not_break_the_aggregate(self):
        """Regression: ``aggregate_pkts_per_sec`` divided by the busiest
        shard's elapsed *after* round(_, 3) — a sub-millisecond shard
        rounded to 0.0, yielding None (or a wildly inflated rate) on
        quick runs.  The fold must use the raw elapsed and round only
        the rendered per-shard values."""
        engine = EngineConfig(workers=2, collect_metrics=False)
        blocks = [
            _shard_block(0, 10, 0.0004),
            _shard_block(1, 10, 0.0003),
        ]
        merged = _merge_blocks(
            "P4", quick_config(), engine, blocks, wall_s=0.002
        )
        assert merged["aggregate_pkts_per_sec"] == round(20 / 0.0004, 1)
        # Presentation rounding still applies to the rendered shards.
        assert [s["elapsed_s"] for s in merged["shards"]] == [0.0, 0.0]

    def test_zero_elapsed_yields_none_not_crash(self):
        engine = EngineConfig(workers=1, collect_metrics=False)
        merged = _merge_blocks(
            "P4", quick_config(), engine, [_shard_block(0, 5, 0.0)],
            wall_s=0.0,
        )
        assert merged["aggregate_pkts_per_sec"] is None
        assert merged["pkts_per_sec"] is None

    def test_real_run_reports_unrounded_busy_time(self):
        merged = run_sharded_program(
            quick_config(packets=50, fault_rate=0.0),
            "P4",
            EngineConfig(workers=2),
        )
        # However quick the run, the aggregate must be a real number.
        assert merged["aggregate_pkts_per_sec"] is not None
        assert merged["aggregate_pkts_per_sec"] > 0


class TestFailureHandling:
    def test_worker_exception_raises_engine_error(self):
        with pytest.raises(EngineError) as info:
            run_sharded_program(
                quick_config(packets=100),
                "P4",
                EngineConfig(workers=2, sabotage="error"),
            )
        err = info.value.to_dict()
        assert err["code"] == "engine-error"
        assert err["shard"] == 0
        assert "sabotaged" in str(err["worker_error"]["error"])
        assert no_orphans()

    def test_dead_worker_raises_engine_error(self):
        with pytest.raises(EngineError, match="died"):
            run_sharded_program(
                quick_config(packets=100),
                "P4",
                EngineConfig(workers=2, sabotage="exit"),
            )
        assert no_orphans()

    def test_worker_interrupt_propagates(self):
        with pytest.raises(KeyboardInterrupt):
            run_sharded_program(
                quick_config(packets=100),
                "P4",
                EngineConfig(workers=2, sabotage="interrupt"),
            )
        assert no_orphans()

    def test_surviving_workers_are_torn_down(self):
        # The non-sabotaged shard is mid-run when shard 0 fails; the
        # parent must not leave it running.
        with pytest.raises(EngineError):
            run_sharded_program(
                quick_config(packets=2000),
                "P4",
                EngineConfig(workers=2, sabotage="error"),
            )
        assert no_orphans()
