"""SPSC shared-memory ring: framing, wrap, sentinel, backpressure."""

import threading
import time

import pytest

from repro.targets.ring import DEFAULT_RING_BYTES, RingTimeout, ShardRing


@pytest.fixture()
def ring():
    r = ShardRing(2048)
    yield r
    r.close()
    r.unlink()


class TestFraming:
    def test_roundtrip_in_order(self, ring):
        payloads = [bytes([i]) * (i + 1) for i in range(50)]
        for p in payloads:
            ring.put(p)
        assert [ring.get() for _ in payloads] == payloads

    def test_empty_payload(self, ring):
        ring.put(b"")
        ring.put(b"x")
        assert ring.get() == b""
        assert ring.get() == b"x"

    def test_sentinel_ends_stream(self, ring):
        ring.put(b"last")
        ring.close_stream()
        assert ring.get() == b"last"
        assert ring.get() is None

    def test_oversized_record_rejected(self, ring):
        with pytest.raises(ValueError):
            ring.put(b"\x00" * 4096)

    def test_minimum_capacity_enforced(self):
        with pytest.raises(ValueError):
            ShardRing(100)


class TestWrap:
    def test_records_survive_many_wraps(self, ring):
        # Far more data than the ring holds, consumed in lockstep, with
        # sizes chosen so records straddle the region boundary often.
        for i in range(500):
            payload = bytes([i % 256]) * (37 + (i * 13) % 300)
            ring.put(payload)
            assert ring.get() == payload

    def test_interleaved_batches_wrap(self, ring):
        # Keep a small backlog in flight (bounded well under capacity,
        # so the single-threaded producer never blocks) while records of
        # varying size march across the wrap boundary repeatedly.
        sent = []
        for i in range(300):
            payload = bytes([i % 256]) * (1 + (i * 7) % 120)
            ring.put(payload, timeout=5)
            sent.append(payload)
            if len(sent) > 5:
                assert ring.get(timeout=5) == sent.pop(0)
        while sent:
            assert ring.get(timeout=5) == sent.pop(0)


class TestBackpressure:
    def test_put_blocks_until_consumer_drains(self, ring):
        # Fill the ring beyond capacity from a thread; the producer must
        # block (not raise, not drop) until the consumer makes space.
        payload = b"z" * 400
        total = 20  # 20 * ~404 bytes >> 2048 capacity
        done = threading.Event()

        def produce():
            for _ in range(total):
                ring.put(payload, timeout=10)
            ring.close_stream(timeout=10)
            done.set()

        producer = threading.Thread(target=produce, daemon=True)
        producer.start()
        time.sleep(0.1)
        assert not done.is_set()  # blocked on the full ring
        got = 0
        while ring.get(timeout=10) is not None:
            got += 1
        producer.join(timeout=10)
        assert done.is_set() and got == total

    def test_put_timeout_raises(self, ring):
        while True:  # fill without a consumer
            try:
                ring.put(b"y" * 400, timeout=0.05)
            except RingTimeout:
                break

    def test_get_timeout_raises(self, ring):
        with pytest.raises(RingTimeout):
            ring.get(timeout=0.05)

    def test_put_poll_callback_invoked_while_blocked(self, ring):
        calls = []

        class Escape(Exception):
            pass

        def poll():
            calls.append(1)
            if len(calls) >= 3:
                raise Escape

        while True:  # fill up, then confirm poll fires during the block
            try:
                ring.put(b"w" * 400, poll=poll, timeout=5)
            except Escape:
                break
        assert len(calls) >= 3


class TestLifecycle:
    def test_attach_by_name_shares_data(self):
        ring = ShardRing(4096)
        try:
            ring.put(b"hello")
            peer = ShardRing(4096, name=ring.name, create=False)
            assert peer.get() == b"hello"
            peer.close()
        finally:
            ring.close()
            ring.unlink()

    def test_reduce_reattaches(self):
        import pickle

        ring = ShardRing(4096)
        try:
            ring.put(b"pickled")
            clone = pickle.loads(pickle.dumps(ring))
            assert clone.capacity == ring.capacity
            assert clone.get() == b"pickled"
            clone.close()
        finally:
            ring.close()
            ring.unlink()

    def test_unlink_destroys_segment(self):
        from multiprocessing import shared_memory

        ring = ShardRing(2048)
        name = ring.name
        ring.close()
        ring.unlink()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_default_capacity(self):
        ring = ShardRing()
        try:
            assert ring.capacity == DEFAULT_RING_BYTES
        finally:
            ring.close()
            ring.unlink()


class TestFinalizer:
    def test_dropping_an_unlinked_ring_reclaims_the_segment(self):
        import gc

        from multiprocessing import shared_memory

        ring = ShardRing(2048)
        name = ring.name
        # Simulate an abnormal path: the owner never calls unlink().
        del ring
        gc.collect()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_explicit_unlink_detaches_the_finalizer(self):
        ring = ShardRing(2048)
        finalizer = ring._finalizer
        ring.close()
        ring.unlink()
        assert ring._finalizer is None
        assert not finalizer.alive  # no second unlink attempt at gc

    def test_attached_ring_has_no_finalizer(self):
        # Only the creator may reclaim the name; a worker-side attach
        # dying must never destroy the parent's segment.
        ring = ShardRing(2048)
        try:
            peer = ShardRing(2048, name=ring.name, create=False)
            assert peer._finalizer is None
            peer.close()
        finally:
            ring.close()
            ring.unlink()

    def test_forked_child_cannot_unlink_parents_segment(self):
        # The finalizer is pid-guarded: a fork inherits the parent's
        # ring object (finalizer included), and the child exiting must
        # leave the segment alone.
        import multiprocessing

        from multiprocessing import shared_memory

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("no fork on this platform")
        ctx = multiprocessing.get_context("fork")
        ring = ShardRing(2048)
        try:
            proc = ctx.Process(target=lambda: None)  # inherits + exits
            proc.start()
            proc.join(5)
            # Parent's segment must still exist.
            probe = shared_memory.SharedMemory(name=ring.name)
            probe.close()
        finally:
            ring.close()
            ring.unlink()
