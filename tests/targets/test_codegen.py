"""The source-codegen backend and the fixed ``--exec`` seam.

The deep observational-parity checks live in ``test_compiled_equiv.py``
(parametrized over ``EXEC_BACKENDS``, so codegen inherits them).  This
file pins what is specific to this backend and to the seam bugfix:

* the CLI ``--exec`` choices are *exactly* ``EXEC_BACKENDS`` (the drift
  that made a third backend silently unreachable cannot recur);
* every ``exec_backend`` validation site rejects unknown names with the
  live backend list, not a stale literal;
* ``--ingest replay`` warns (deprecated) while dispatch stays clean;
* the batched struct-of-arrays path is digest- and ledger-identical to
  per-packet execution, and declines cleanly where it cannot hold.
"""

import hashlib
import random
import warnings

import pytest

from repro.cli import make_parser
from repro.errors import TargetError
from repro.lib.catalog import build_monolithic, build_pipeline
from repro.net.packet import Packet
from repro.targets.backends import (
    DEFAULT_EXEC_BACKEND,
    EXEC_BACKENDS,
    make_pipeline,
)
from repro.targets.codegen import CodegenPipeline
from repro.targets.faults import FaultPlan, ResourceGuards
from repro.targets.soak import (
    NUM_PORTS,
    SoakConfig,
    build_switch,
    compose_program,
    iter_stream,
    update_digest,
)
from repro.targets.switch import Switch, SwitchConfig


def _exec_choices(parser, command):
    sub = next(
        a for a in parser._actions
        if isinstance(a, type(parser._subparsers._group_actions[0]))
    )
    cmd = sub.choices[command]
    action = next(a for a in cmd._actions if "--exec" in a.option_strings)
    return tuple(action.choices), action.default


class TestCliSeam:
    """Regression: the CLI must source its backend list from the seam."""

    @pytest.mark.parametrize("command", ("soak", "profile"))
    def test_exec_choices_are_the_seam_tuple(self, command):
        choices, default = _exec_choices(make_parser(), command)
        assert choices == EXEC_BACKENDS
        assert default == DEFAULT_EXEC_BACKEND

    def test_codegen_reachable_from_cli(self, capsys):
        from repro.cli import main

        rc = main([
            "soak", "--programs", "P1", "--packets", "50",
            "--fault-rate", "0", "--exec", "codegen", "--json",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert '"exec": "codegen"' in out


class TestValidationSites:
    """Every exec_backend gate renders the live list on rejection."""

    def test_soak_config_validate(self):
        config = SoakConfig(exec_backend="jit")
        with pytest.raises(TargetError) as exc:
            config.validate()
        assert exc.value.code == "unknown-backend"
        for name in EXEC_BACKENDS:
            assert name in str(exc.value)

    def test_run_soak_rejects_up_front(self):
        from repro.targets.soak import run_soak

        with pytest.raises(TargetError) as exc:
            run_soak(SoakConfig(packets=10, exec_backend="jit"))
        assert exc.value.code == "unknown-backend"

    def test_pool_submit_rejects_in_parent(self):
        from repro.targets.engine import EngineConfig
        from repro.targets.pool import WorkerPool

        with WorkerPool(EngineConfig(workers=1)) as pool:
            with pytest.raises(TargetError) as exc:
                pool.submit(SoakConfig(packets=10, exec_backend="jit"), "P1")
            assert exc.value.code == "unknown-backend"

    def test_profile_shards_reject_in_parent(self):
        from repro.targets.engine import EngineConfig, run_profile_shards

        with pytest.raises(TargetError) as exc:
            run_profile_shards(
                build_pipeline("P1"), [b"\x00" * 16], 4,
                EngineConfig(workers=1), exec_backend="jit",
            )
        assert exc.value.code == "unknown-backend"
        for name in EXEC_BACKENDS:
            assert name in str(exc.value)


class TestReplayDeprecation:
    def test_replay_warns(self, capsys):
        from repro.cli import main

        with pytest.warns(DeprecationWarning, match="replay is deprecated"):
            rc = main([
                "soak", "--programs", "P1", "--packets", "50",
                "--fault-rate", "0", "--workers", "1",
                "--ingest", "replay",
            ])
        assert rc == 0
        assert "deprecated" in capsys.readouterr().err

    def test_replay_json_mode_keeps_stdout_clean(self, capsys):
        import json

        from repro.cli import main

        with pytest.warns(DeprecationWarning):
            rc = main([
                "soak", "--programs", "P1", "--packets", "50",
                "--fault-rate", "0", "--workers", "1",
                "--ingest", "replay", "--json",
            ])
        assert rc == 0
        json.loads(capsys.readouterr().out)

    def test_dispatch_is_warning_free(self):
        from repro.cli import main

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            rc = main([
                "soak", "--programs", "P1", "--packets", "50",
                "--fault-rate", "0", "--workers", "1",
                "--ingest", "dispatch", "--json",
            ])
        assert rc == 0


class TestGeneratedSource:
    def test_micro_generates_batch_fast_path(self):
        pipe = CodegenPipeline(build_pipeline("P4"))
        assert pipe.batch_supported
        assert "def _cg_run(" in pipe.source
        assert "def _cg_run_batch(" in pipe.source
        compile(pipe.source, "<check>", "exec")

    def test_mono_has_no_batch_path(self):
        """The SoA layout is a byte-stack (micro) specialization; the
        monolithic baseline runs per-packet and the switch falls back."""
        pipe = CodegenPipeline(build_monolithic("P4"))
        assert not pipe.batch_supported
        assert "def _cg_run_batch(" not in pipe.source

    def test_process_soa_unsupported_raises(self):
        pipe = CodegenPipeline(build_monolithic("P1"))
        with pytest.raises(TargetError):
            pipe.process_soa([b""], [0], [Packet(b"")])


def _soak_switch(backend, fault_rate=0.1):
    config = SoakConfig(
        programs=["P4"], packets=0, seed=99, fault_rate=fault_rate,
        exec_backend=backend,
    )
    return config, build_switch(config, "P4", compose_program(config, "P4"))


class TestBatchParity:
    """soa=True must be invisible: same verdicts, digest, and ledger."""

    @pytest.mark.parametrize("fault_rate", (0.0, 0.2))
    def test_batch_digest_and_ledger_match_per_packet(self, fault_rate):
        config = SoakConfig(
            programs=["P4"], packets=1500, seed=4, fault_rate=fault_rate,
            exec_backend="codegen",
        )
        digests = {}
        stats = {}
        for soa in (False, True):
            switch = build_switch(config, "P4", compose_program(config, "P4"))
            assert switch.pipeline.batch_supported
            stream = list(iter_stream(config, "P4", NUM_PORTS))
            digest = hashlib.sha256()
            for lo in range(0, len(stream), 256):
                chunk = stream[lo:lo + 256]
                verdicts = switch.process_batch(
                    [(pkt, port) for _, pkt, port in chunk], soa=soa
                )
                for (index, _, _), verdict in zip(chunk, verdicts):
                    assert verdict.balanced()
                    update_digest(digest, index, verdict)
            digests[soa] = digest.hexdigest()
            stats[soa] = dict(switch.stats), dict(switch.drops_by_reason)
        assert digests[False] == digests[True]
        assert stats[False] == stats[True]

    def test_soa_declines_for_strict_and_recirc_port(self):
        composed = build_pipeline("P4")
        strict = Switch(make_pipeline(composed, "codegen"), strict=True)
        spy = Switch(
            make_pipeline(composed, "codegen"),
            SwitchConfig(num_ports=16, recirculate_port=15),
        )
        rng = random.Random(0)
        items = [
            (Packet(bytes(rng.randrange(256) for _ in range(34))), 1)
            for _ in range(8)
        ]
        # Both configurations must take the per-packet path (the SoA
        # fast path neither raises under strict nor loses recirculated
        # packets) and still produce balanced verdicts.
        for switch in (strict, spy):
            for verdict in switch.process_batch(items, soa=True):
                assert verdict.balanced()

    def test_interp_and_compiled_fall_back(self):
        """Backends without batch support keep working under soa=True."""
        composed = build_pipeline("P1")
        for backend in ("interp", "compiled"):
            switch = Switch(make_pipeline(composed, backend))
            verdicts = switch.process_batch(
                [(Packet(b"\x00" * 20), 0)], soa=True
            )
            assert len(verdicts) == 1

    def test_register_state_parity_across_batches(self):
        """Persistent registers evolve identically lane-by-lane."""
        from repro.core.api import build_dataplane, compile_module

        src = """
header eth_h { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
struct hdr_t { eth_h eth; }
program BatchCounter : implements Unicast<> {
  parser P(extractor ex, pkt p, out hdr_t h) {
    state start { ex.extract(p, h.eth); transition accept; }
  }
  control C(pkt p, inout hdr_t h, im_t im) {
    register() seen;
    apply {
      bit<16> count;
      bit<32> port;
      port = (bit<32>) im.get_in_port();
      seen.read(count, port);
      count = count + 1;
      seen.write(port, (bit<16>) count);
      im.set_out_port(2);
    }
  }
  control D(emitter em, pkt p, in hdr_t h) {
    apply { em.emit(p, h.eth); }
  }
}
BatchCounter(P, C, D) main;
"""
        composed = build_dataplane(
            compile_module(src, "batch_counter.up4")
        ).instance.composed
        per_pkt = CodegenPipeline(composed)
        rng = random.Random(8)
        pkts = [
            Packet(bytes(rng.randrange(256) for _ in range(54)))
            for _ in range(40)
        ]
        ports = [rng.randrange(4) for _ in range(40)]
        for pkt, port in zip(pkts, ports):
            per_pkt.process(pkt, port)
        if per_pkt.batch_supported:
            batched = CodegenPipeline(composed)
            lanes = batched.process_soa(
                [p.tobytes() for p in pkts], ports, pkts
            )
            assert all(exc is None for _, _, exc in lanes)
            assert {
                name: dict(reg.cells)
                for name, reg in per_pkt.persistent.items()
            } == {
                name: dict(reg.cells)
                for name, reg in batched.persistent.items()
            }


class TestEngineDigestWithCodegen:
    def test_sharded_dispatch_digest_matches_interp(self):
        """The engine's flush path (soa=True) keeps the merged digest a
        pure function of (seed, workers, shard_policy) — backend-free."""
        from repro.targets.engine import EngineConfig
        from repro.targets.soak import run_soak

        digests = {}
        for backend in ("interp", "codegen"):
            summary = run_soak(
                SoakConfig(
                    programs=["P4"], packets=800, seed=13, fault_rate=0.1,
                    exec_backend=backend,
                ),
                engine=EngineConfig(workers=2, ingest="dispatch"),
            )
            assert summary["ok"]
            digests[backend] = summary["digest"]
        assert digests["interp"] == digests["codegen"]
