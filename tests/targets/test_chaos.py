"""Process-level chaos: supervised recovery must reproduce the exact
undisturbed digest, or fail with the structured partial-result error —
never a traceback, a hang, an orphan process, or a leaked segment."""

import multiprocessing
import os
import time

import pytest

from repro.errors import EXIT_TARGET_ERROR
from repro.targets.engine import EngineConfig, EngineError
from repro.targets.faults import ChaosPlan
from repro.targets.pool import WorkerPool
from repro.targets.soak import SoakConfig
from repro.targets.supervision import RestartPolicy

PACKETS = 2000


def chaos_config(**kw) -> SoakConfig:
    defaults = dict(
        programs=["P4"], packets=PACKETS, seed=77, fault_rate=0.05
    )
    defaults.update(kw)
    return SoakConfig(**defaults)


def fast_policy(**kw) -> RestartPolicy:
    defaults = dict(backoff_base_s=0.01, backoff_max_s=0.05, jitter=0.0)
    defaults.update(kw)
    return RestartPolicy(**defaults)


def no_orphans() -> bool:
    deadline = time.monotonic() + 5
    while multiprocessing.active_children():
        if time.monotonic() > deadline:
            return False
        time.sleep(0.05)
    return True


def shm_segments() -> set:
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def run_chaotic(config, specs, *, policy=None, start_method=None,
                telemetry=None, **engine_kw):
    engine = EngineConfig(
        workers=2,
        chaos=ChaosPlan.from_specs(specs) if specs else None,
        restart=policy or fast_policy(),
        **engine_kw,
    )
    with WorkerPool(engine, start_method=start_method) as pool:
        return pool.submit(config, "P4", telemetry=telemetry)


@pytest.fixture(scope="module")
def clean_digest():
    """The undisturbed reference digest every chaos run must match."""
    block = run_chaotic(chaos_config(), specs=None)
    assert block["ledger_ok"] and not block["uncaught"]
    return block["digest"]


class TestKillRecovery:
    def test_sigkill_mid_stream_reproduces_digest(self, clean_digest):
        before = shm_segments()
        block = run_chaotic(
            chaos_config(), f"kill:shard=0@pkt={PACKETS // 2}"
        )
        assert block["digest"] == clean_digest
        assert block["uncaught"] == [] and block["ledger_ok"]
        assert block["restarts"] == {"0": 1}
        assert block["packets"] == PACKETS
        assert no_orphans()
        assert shm_segments() <= before  # no leaked ring segments

    def test_sigkill_under_backpressure_tiny_ring(self, clean_digest):
        # A 2 KiB ring forces the parent to block on a full ring many
        # times; the kill lands while records are in flight, so the
        # unacked suffix redispatch is genuinely exercised.
        block = run_chaotic(
            chaos_config(), f"kill:shard=0@pkt={PACKETS // 2}",
            ring_bytes=2048,
        )
        assert block["digest"] == clean_digest
        assert block["restarts"] == {"0": 1}
        assert no_orphans()

    def test_sigkill_under_spawn_start_method(self, clean_digest):
        block = run_chaotic(
            chaos_config(), f"kill:shard=0@pkt={PACKETS // 2}",
            start_method="spawn",
        )
        assert block["digest"] == clean_digest
        assert block["restarts"] == {"0": 1}
        assert no_orphans()

    def test_kill_during_final_epoch(self, clean_digest):
        # pkt beyond the stream fires after the sentinels: the worker
        # dies draining its ring tail or finalizing its result block.
        block = run_chaotic(
            chaos_config(), f"kill:shard=1@pkt={PACKETS + 1}"
        )
        assert block["digest"] == clean_digest
        assert block["uncaught"] == []
        # The worker may have finished before the late kill landed; if
        # it had not, exactly one supervised restart healed it.
        assert block["restarts"] in ({}, {"1": 1})
        assert no_orphans()

    def test_no_duplicate_unit_when_failure_lands_on_own_packet(self):
        # Regression: the dispatcher used to advance ``gen_high`` to the
        # current packet *before* resolving deferred failures.  When a
        # death was detected at the top of an iteration whose packet
        # belonged to the restarted shard, catch-up regenerated that
        # packet AND the loop buffered it — one duplicated unit and a
        # diverged digest.  This seed/kill combination reproduced the
        # race deterministically before the fix.
        config = chaos_config(packets=3000, seed=5, fault_rate=0.1)
        clean = run_chaotic(config, specs=None)
        block = run_chaotic(config, "kill:shard=1@pkt=1500")
        assert block["units"] == 3000
        assert block["digest"] == clean["digest"]
        assert block["restarts"] == {"1": 1}

    def test_double_kill_same_shard(self, clean_digest):
        block = run_chaotic(
            chaos_config(),
            [
                f"kill:shard=0@pkt={PACKETS // 4}",
                f"kill:shard=0@pkt={PACKETS // 2}",
            ],
        )
        assert block["digest"] == clean_digest
        assert block["restarts"] == {"0": 2}
        assert block["supervision"]["total_restarts"] == 2
        assert no_orphans()

    def test_kills_on_both_shards(self, clean_digest):
        block = run_chaotic(
            chaos_config(),
            [
                f"kill:shard=0@pkt={PACKETS // 3}",
                f"kill:shard=1@pkt={2 * PACKETS // 3}",
            ],
        )
        assert block["digest"] == clean_digest
        assert block["restarts"] == {"0": 1, "1": 1}
        assert no_orphans()

    def test_compiled_backend_recovers_identically(self):
        config = chaos_config(exec_backend="compiled")
        clean = run_chaotic(config, specs=None)
        block = run_chaotic(config, f"kill:shard=0@pkt={PACKETS // 2}")
        assert block["digest"] == clean["digest"]
        assert block["restarts"] == {"0": 1}
        assert no_orphans()


class TestStopAndStall:
    def test_sigstop_resume_loses_nothing(self, clean_digest):
        # The worker freezes mid-stream; backpressure holds the parent
        # until the scheduled SIGCONT, so no restart is even needed.
        block = run_chaotic(
            chaos_config(),
            f"stop:shard=0@pkt={PACKETS // 2}@resume=0.2",
        )
        assert block["digest"] == clean_digest
        assert block["uncaught"] == []
        assert no_orphans()

    def test_ring_stall_triggers_supervised_restart(self, clean_digest):
        # The worker sleeps far past the watchdog while its ring fills;
        # the parent's blocked put times out, the supervisor replaces
        # the replica (the replacement is not stalled: attempt filter),
        # and the digest still matches.
        block = run_chaotic(
            chaos_config(),
            f"stall:shard=0@pkt={PACKETS // 4}@for=30",
            ring_bytes=2048,
            watchdog_s=1.0,
        )
        assert block["digest"] == clean_digest
        assert block["restarts"] == {"0": 1}
        assert no_orphans()


class TestBudgetExhaustion:
    def test_partial_result_error_is_structured(self):
        before = shm_segments()
        with pytest.raises(EngineError) as excinfo:
            run_chaotic(
                chaos_config(),
                f"kill:shard=0@pkt={PACKETS // 2}",
                policy=fast_policy(max_restarts_per_shard=0,
                                   restart_budget=0),
            )
        err = excinfo.value
        assert err.shard == 0
        assert "restart budget" in str(err)
        as_dict = err.to_dict()
        assert as_dict["exit_code"] == EXIT_TARGET_ERROR
        assert as_dict["supervision"]["abandoned"] == [0]
        # The surviving shard drained and reported a full result.
        assert as_dict["partial"]["completed"] == [1]
        assert as_dict["partial"]["shards"]["1"]["digest"]
        assert as_dict["watermark"] >= -1
        assert no_orphans()
        assert shm_segments() <= before

    def test_repeated_kills_exhaust_the_budget(self):
        # Every incarnation dies at a later dispatch position; with one
        # allowed restart the second death abandons the shard.
        specs = [
            f"kill:shard=0@pkt={PACKETS // 4}",
            f"kill:shard=0@pkt={PACKETS // 2}",
        ]
        with pytest.raises(EngineError) as excinfo:
            run_chaotic(
                chaos_config(), specs,
                policy=fast_policy(max_restarts_per_shard=1),
            )
        err = excinfo.value
        assert err.supervision["restarts"] == {"0": 1}
        assert err.supervision["abandoned"] == [0]
        events = [e["event"] for e in err.supervision["events"]]
        assert events == ["restart", "abandon"]
        assert no_orphans()

    def test_pool_is_broken_after_partial_failure(self):
        engine = EngineConfig(
            workers=2,
            chaos=ChaosPlan.from_specs("kill:shard=0@pkt=100"),
            restart=fast_policy(max_restarts_per_shard=0, restart_budget=0),
        )
        pool = WorkerPool(engine)
        try:
            with pytest.raises(EngineError):
                pool.submit(chaos_config(), "P4")
            with pytest.raises(EngineError):
                pool.submit(chaos_config(), "P4")
        finally:
            pool.close()
        assert no_orphans()


class TestTelemetryIntegration:
    def test_restart_events_and_watermarks_surface(self, clean_digest):
        from repro.obs.telemetry import LiveTelemetry

        telemetry = LiveTelemetry()
        block = run_chaotic(
            chaos_config(),
            f"kill:shard=0@pkt={PACKETS // 2}",
            telemetry=telemetry,
            publish_interval_s=0.05,
        )
        assert block["digest"] == clean_digest
        snapshot = telemetry.snapshot()
        events = snapshot["events"]
        assert any(e["event"] == "restart" and e["shard"] == 0
                   for e in events)
        watermarks = {
            entry["shard"]: entry.get("watermark")
            for entry in snapshot["shards"]
        }
        # Final publishes carry each shard's completed watermark.
        assert all(w is not None for w in watermarks.values())
        assert no_orphans()
