"""Unit tests for the µP4 parser."""

import pytest

from repro.errors import ParseError
from repro.frontend import astnodes as ast
from repro.frontend.parser import parse_program


class TestTypeDecls:
    def test_header(self):
        prog = parse_program("header eth_h { bit<48> dst; bit<48> src; bit<16> type_; }")
        decl = prog.decls[0]
        assert isinstance(decl, ast.HeaderDecl)
        assert decl.name == "eth_h"
        assert [n for n, _ in decl.fields] == ["dst", "src", "type_"]
        assert decl.fields[0][1].width == 48

    def test_header_with_varbit(self):
        prog = parse_program("header opt_h { bit<8> len; varbit<320> options; }")
        assert isinstance(prog.decls[0].fields[1][1], ast.VarBitType)
        assert prog.decls[0].fields[1][1].max_width == 320

    def test_struct_with_header_stack(self):
        prog = parse_program(
            "header mpls_h { bit<32> e; } struct hdr_t { mpls_h mpls[3]; }"
        )
        stack = prog.decls[1].fields[0][1]
        assert isinstance(stack, ast.HeaderStackType) and stack.size == 3

    def test_enum(self):
        prog = parse_program("enum color_t { RED, GREEN, BLUE }")
        assert prog.decls[0].members == ["RED", "GREEN", "BLUE"]

    def test_typedef(self):
        prog = parse_program("typedef bit<9> port_t;")
        assert isinstance(prog.decls[0], ast.TypedefDecl)
        assert prog.decls[0].aliased.width == 9

    def test_const(self):
        prog = parse_program("const bit<16> TYPE_IPV4 = 0x0800;")
        assert prog.decls[0].value.value == 0x800

    def test_empty_struct(self):
        prog = parse_program("struct empty_t { }")
        assert prog.decls[0].fields == []


class TestParserDecls:
    SRC = """
    parser P(extractor ex, pkt p, out hdr_t h) {
      state start {
        ex.extract(p, h.eth);
        transition select(h.eth.etherType) {
          0x0800 : parse_ipv4;
          0x86DD &&& 0xFFFF : parse_ipv6;
          default : accept;
        }
      }
      state parse_ipv4 { ex.extract(p, h.ipv4); transition accept; }
      state parse_ipv6 { ex.extract(p, h.ipv6); transition accept; }
    }
    """

    def test_states(self):
        prog = parse_program(self.SRC)
        parser = prog.decls[0]
        assert isinstance(parser, ast.ParserDecl)
        assert [s.name for s in parser.states] == ["start", "parse_ipv4", "parse_ipv6"]

    def test_select_cases(self):
        parser = parse_program(self.SRC).decls[0]
        start = parser.state("start")
        assert len(start.select_exprs) == 1
        assert [target for _, target in start.select_cases] == [
            "parse_ipv4",
            "parse_ipv6",
            "accept",
        ]
        mask_keyset = start.select_cases[1][0][0]
        assert isinstance(mask_keyset, ast.MaskExpr)
        default_keyset = start.select_cases[2][0][0]
        assert isinstance(default_keyset, ast.DefaultExpr)

    def test_direct_transition(self):
        parser = parse_program(self.SRC).decls[0]
        assert parser.state("parse_ipv4").direct_next == "accept"

    def test_tuple_select(self):
        src = """
        parser P(extractor ex, pkt p, out hdr_t h) {
          state start {
            transition select(h.a, h.b) {
              (1, 2) : s1;
              (_, 4) : accept;
            }
          }
          state s1 { transition accept; }
        }
        """
        start = parse_program(src).decls[0].state("start")
        assert len(start.select_exprs) == 2
        assert len(start.select_cases[0][0]) == 2


class TestControlDecls:
    SRC = """
    control C(pkt p, inout hdr_t h, im_t im) {
      bit<16> nh;
      L3() l3_i;
      action drop() {}
      action fwd(bit<48> dmac, bit<8> port) {
        h.eth.dstMac = dmac;
        im.set_out_port(port);
      }
      table forward_tbl {
        key = { nh : exact; h.eth.dstMac : ternary; }
        actions = { fwd; drop; }
        default_action = drop();
        size = 1024;
      }
      apply {
        l3_i.apply(p, im, nh, h.eth.etherType);
        if (nh == 0) { drop(); } else { forward_tbl.apply(); }
      }
    }
    """

    def test_locals(self):
        control = parse_program(self.SRC).decls[0]
        names = [type(d).__name__ for d in control.locals]
        assert names == ["VarLocal", "InstanceDecl", "ActionDecl", "ActionDecl", "TableDecl"]

    def test_table_properties(self):
        control = parse_program(self.SRC).decls[0]
        table = control.locals[-1]
        assert [k.match_kind for k in table.keys] == ["exact", "ternary"]
        assert table.actions == ["fwd", "drop"]
        assert table.default_action == "drop"
        assert table.size == 1024

    def test_apply_body(self):
        control = parse_program(self.SRC).decls[0]
        assert len(control.apply_body.stmts) == 2
        assert isinstance(control.apply_body.stmts[1], ast.IfStmt)

    def test_const_entries(self):
        src = """
        control C(pkt p) {
          action a(bit<8> x) {}
          table t {
            key = { p_field : exact; other : ternary; }
            actions = { a; }
            const entries = {
              (0x0800, _) : a(1);
              (0x86DD, 0x6) : a(2);
            }
            default_action = a(0);
          }
          apply { t.apply(); }
        }
        """
        # p_field/other unresolved here; parse only.
        table = parse_program(src).decls[0].locals[1]
        assert len(table.const_entries) == 2
        assert table.const_entries[0].action_name == "a"
        assert table.const_entries[0].action_args[0].value == 1
        assert table.default_action_args[0].value == 0

    def test_missing_apply_rejected(self):
        with pytest.raises(ParseError):
            parse_program("control C(pkt p) { action a() {} }")


class TestPrograms:
    def test_program_decl(self):
        src = """
        program L3 : implements Unicast<> {
          parser P(extractor ex, pkt p, out empty_t h) { state start { transition accept; } }
          control C(pkt p, im_t im, out bit<16> nh) { apply { } }
          control D(emitter em, pkt p, in empty_t h) { apply { } }
        }
        """
        prog = parse_program(src).decls[0]
        assert isinstance(prog, ast.ProgramDecl)
        assert prog.interface == "Unicast"
        assert len(prog.decls) == 3

    def test_module_signature(self):
        prog = parse_program("L3(pkt p, im_t im, out bit<16> nh, inout bit<16> type_);")
        sig = prog.decls[0]
        assert isinstance(sig, ast.ModuleSigDecl)
        assert [p.direction for p in sig.params] == ["", "", "out", "inout"]

    def test_package_instantiation(self):
        prog = parse_program("ModularRouter(P, C, D) main;")
        inst = prog.decls[0]
        assert isinstance(inst, ast.PackageInstantiation)
        assert inst.package == "ModularRouter"
        assert inst.args == ["P", "C", "D"]

    def test_interface_with_args(self):
        src = """
        program M : implements Multicast<bit<16>> {
          parser P(extractor ex, pkt p, out empty_t h) { state start { transition accept; } }
          control C(pkt p, im_t im) { apply { } }
          control D(emitter em, pkt p, in empty_t h) { apply { } }
        }
        """
        prog = parse_program(src).decls[0]
        assert len(prog.interface_args) == 1
        assert prog.interface_args[0].width == 16


class TestStatements:
    def wrap(self, body):
        return parse_program(
            "control C(pkt p) { apply { %s } }" % body
        ).decls[0].apply_body.stmts

    def test_switch_with_block_and_single(self):
        stmts = self.wrap(
            "switch (x) { 0x0800: a_i.apply(p); 0x86DD: { b_i.apply(p); c = 1; } default: { } }"
        )
        sw = stmts[0]
        assert isinstance(sw, ast.SwitchStmt)
        assert len(sw.cases) == 3
        assert isinstance(sw.cases[0].body, ast.MethodCallStmt)
        assert isinstance(sw.cases[1].body, ast.BlockStmt)

    def test_switch_fallthrough(self):
        sw = self.wrap("switch (x) { 1: 2: { y = 1; } }")[0]
        assert sw.cases[0].body is None
        assert sw.cases[1].body is not None

    def test_return_exit(self):
        stmts = self.wrap("return; exit;")
        assert isinstance(stmts[0], ast.ReturnStmt)
        assert isinstance(stmts[1], ast.ExitStmt)

    def test_var_decl_with_init(self):
        stmt = self.wrap("bit<16> x = 0xFF;")[0]
        assert isinstance(stmt, ast.VarDeclStmt)
        assert stmt.init.value == 0xFF

    def test_nonsense_rejected(self):
        with pytest.raises(ParseError):
            self.wrap("1 + 2;")


class TestExpressions:
    def expr(self, text):
        prog = parse_program("control C(pkt p) { apply { x = %s; } }" % text)
        return prog.decls[0].apply_body.stmts[0].rhs

    def test_precedence(self):
        e = self.expr("1 + 2 * 3")
        assert e.op == "+" and e.right.op == "*"

    def test_comparison_precedence(self):
        e = self.expr("a + 1 == b")
        assert e.op == "==" and e.left.op == "+"

    def test_concat(self):
        e = self.expr("a ++ b ++ c")
        assert e.op == "++" and e.left.op == "++"

    def test_member_chain(self):
        e = self.expr("h.eth.dstMac")
        assert isinstance(e, ast.MemberExpr) and e.member == "dstMac"
        assert e.base.member == "eth"

    def test_slice(self):
        e = self.expr("x[15:8]")
        assert isinstance(e, ast.SliceExpr) and (e.hi, e.lo) == (15, 8)

    def test_index(self):
        e = self.expr("stack[2]")
        assert isinstance(e, ast.IndexExpr) and e.index.value == 2

    def test_cast(self):
        e = self.expr("(bit<8>) x")
        assert isinstance(e, ast.CastExpr) and e.target.width == 8

    def test_call_with_args(self):
        e = self.expr("h.eth.isValid()")
        assert isinstance(e, ast.MethodCallExpr)
        assert e.target.member == "isValid"

    def test_unary(self):
        e = self.expr("!(a == b)")
        assert isinstance(e, ast.UnaryExpr) and e.op == "!"

    def test_parens_override(self):
        e = self.expr("(1 + 2) * 3")
        assert e.op == "*" and e.left.op == "+"

    def test_bool_literals(self):
        assert self.expr("true").value is True
        assert self.expr("false").value is False

    def test_slice_non_literal_rejected(self):
        with pytest.raises(ParseError):
            self.expr("x[a:b]")


class TestErrors:
    def test_error_mentions_location(self):
        with pytest.raises(ParseError) as exc:
            parse_program("header h {\n  bad~field;\n}")
        assert "2:" in str(exc.value) or "bad" in str(exc.value)

    def test_top_level_garbage(self):
        with pytest.raises(ParseError):
            parse_program("transition accept;")

    def test_unclosed_brace(self):
        with pytest.raises(ParseError):
            parse_program("header h { bit<8> f;")
