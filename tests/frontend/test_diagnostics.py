"""Diagnostics quality: locations, snippets, and error propagation."""

import pytest

from repro.errors import (
    AnalysisError,
    CompileError,
    LexError,
    LinkError,
    ParseError,
    TypeCheckError,
)
from repro.frontend.source import SourceFile, SourceLocation, format_snippet
from repro.frontend.typecheck import check_program


class TestSourceLocations:
    def test_location_str(self):
        loc = SourceLocation("router.up4", 12, 5)
        assert str(loc) == "router.up4:12:5"

    def test_snippet_points_at_column(self):
        source = "line one\nline two here\nline three"
        loc = SourceLocation("f", 2, 6)
        text = format_snippet(source, loc, "bad token")
        lines = text.splitlines()
        assert lines[0] == "f:2:6: bad token"
        assert lines[1].strip() == "line two here"
        assert lines[2].index("^") == lines[1].index("t")

    def test_snippet_out_of_range_degrades(self):
        text = format_snippet("one line", SourceLocation("f", 99, 1), "m")
        assert text == "f:99:1: m"

    def test_source_file_diagnostic(self):
        sf = SourceFile("a\nbb\nccc", "x.up4")
        assert "x.up4:3:2" in sf.diagnostic(sf.location(3, 2), "oops")


class TestErrorLocations:
    def test_lex_error_location(self):
        with pytest.raises(LexError) as exc:
            check_program("header h {\n  bit<8> $bad;\n}", "m.up4")
        assert "m.up4:2:10" in str(exc.value)

    def test_parse_error_location(self):
        with pytest.raises(ParseError) as exc:
            check_program("header h_t {\n  bit<8> f\n}", "m.up4")
        assert "m.up4:3:1" in str(exc.value)

    def test_typecheck_error_location(self):
        src = (
            "header h_t { bit<8> f; }\n"
            "struct s_t { h_t h; }\n"
            "program T : implements Unicast<> {\n"
            "  parser P(extractor ex, pkt p, out s_t h) {\n"
            "    state start { transition accept; }\n"
            "  }\n"
            "  control C(pkt p, inout s_t h, im_t im) {\n"
            "    apply { h.h.nope = 1; }\n"
            "  }\n"
            "  control D(emitter em, pkt p, in s_t h) { apply { } }\n"
            "}\n"
        )
        with pytest.raises(TypeCheckError) as exc:
            check_program(src, "m.up4")
        assert "m.up4:8" in str(exc.value)
        assert "nope" in str(exc.value)

    def test_error_hierarchy(self):
        assert issubclass(LexError, CompileError)
        assert issubclass(ParseError, CompileError)
        assert issubclass(TypeCheckError, CompileError)
        assert issubclass(LinkError, CompileError)
        assert issubclass(AnalysisError, CompileError)


class TestHelpfulMessages:
    def expect(self, src, *fragments):
        with pytest.raises(CompileError) as exc:
            check_program(src, "m.up4")
        message = str(exc.value)
        for fragment in fragments:
            assert fragment in message, (fragment, message)

    def test_unknown_type_names_the_type(self):
        self.expect("struct s_t { missing_t x; }", "missing_t")

    def test_unknown_interface_named(self):
        self.expect(
            "program X : implements Teleport<> {"
            " control C(pkt p, im_t im) { apply { } } }",
            "Teleport",
        )

    def test_width_mismatch_shows_both(self):
        self.expect(
            "header h_t { bit<8> a; bit<16> b; }\n"
            "struct s_t { h_t h; }\n"
            "program T : implements Unicast<> {\n"
            "  parser P(extractor ex, pkt p, out s_t h) {\n"
            "    state start { transition accept; } }\n"
            "  control C(pkt p, inout s_t h, im_t im) {\n"
            "    apply { h.h.a = h.h.b; } }\n"
            "  control D(emitter em, pkt p, in s_t h) { apply { } }\n"
            "}",
            "bit<8>",
            "bit<16>",
        )

    def test_link_error_names_missing_module(self):
        from repro.midend.linker import link_modules

        src = (
            "header h_t { bit<8> f; }\n"
            "struct s_t { h_t h; }\n"
            "Ghost(pkt p, im_t im);\n"
            "program T : implements Unicast<> {\n"
            "  parser P(extractor ex, pkt p, out s_t h) {\n"
            "    state start { transition accept; } }\n"
            "  control C(pkt p, inout s_t h, im_t im) {\n"
            "    Ghost() g;\n"
            "    apply { g.apply(p, im); } }\n"
            "  control D(emitter em, pkt p, in s_t h) { apply { } }\n"
            "}\nT(P, C, D) main;"
        )
        with pytest.raises(LinkError) as exc:
            link_modules(check_program(src, "m.up4"), [])
        assert "Ghost" in str(exc.value)
