"""Round-trip tests for µP4-IR JSON serialization."""

import json

import pytest

from repro.errors import CompileError
from repro.frontend.json_ir import dump_module, load_module
from repro.frontend.typecheck import check_program

SRC = """
header eth_h { bit<48> dst; bit<48> src; bit<16> etherType; }
struct hdr_t { eth_h eth; }
const bit<16> TYPE_IPV4 = 0x0800;

M(pkt p, im_t im, out bit<16> nh);

program T : implements Unicast<> {
  parser P(extractor ex, pkt p, out hdr_t h) {
    state start {
      ex.extract(p, h.eth);
      transition select(h.eth.etherType) {
        0x0800 : accept;
        default : reject;
      }
    }
  }
  control C(pkt p, inout hdr_t h, im_t im) {
    bit<16> nh;
    M() m_i;
    action drop() {}
    action fwd(bit<48> d, bit<8> port) { h.eth.dst = d; im.set_out_port(port); }
    table t {
      key = { nh : exact; }
      actions = { fwd; drop; }
      default_action = drop();
    }
    apply { m_i.apply(p, im, nh); t.apply(); }
  }
  control D(emitter em, pkt p, in hdr_t h) { apply { em.emit(p, h.eth); } }
}
T(P, C, D) main;
"""


class TestRoundTrip:
    def test_dump_is_valid_json(self):
        text = dump_module(check_program(SRC))
        payload = json.loads(text)
        assert payload["version"] == 1
        assert payload["program"]["!node"] == "SourceProgram"

    def test_roundtrip_preserves_structure(self):
        mod = check_program(SRC, "t.up4")
        mod2 = load_module(dump_module(mod))
        assert set(mod2.programs) == {"T"}
        assert mod2.main == "T"
        info = mod2.programs["T"]
        assert info.parser.name == "P"
        assert info.control.name == "C"
        assert [s.name for s in info.parser.states] == ["start"]
        assert len(info.control.locals) == 5

    def test_roundtrip_preserves_entries_and_consts(self):
        mod2 = load_module(dump_module(check_program(SRC)))
        assert mod2.consts["TYPE_IPV4"].value == 0x800

    def test_double_roundtrip_stable(self):
        text1 = dump_module(check_program(SRC))
        text2 = dump_module(load_module(text1))
        assert text1 == text2

    def test_version_mismatch_rejected(self):
        text = dump_module(check_program(SRC))
        payload = json.loads(text)
        payload["version"] = 99
        with pytest.raises(CompileError):
            load_module(json.dumps(payload))

    def test_bad_node_kind_rejected(self):
        with pytest.raises(CompileError):
            load_module(json.dumps({"version": 1, "program": {"!node": "Bogus"}}))

    def test_reload_recheck_catches_errors(self):
        # Corrupt the IR so a width no longer matches; re-check must fail.
        payload = json.loads(dump_module(check_program(SRC)))
        header = payload["program"]["decls"][0]
        assert header["!node"] == "HeaderDecl" and header["name"] == "eth_h"
        fname, ftype = header["fields"][0]
        assert fname == "dst"
        ftype["width"] = 32  # fwd() still assigns a bit<48> into it
        with pytest.raises(CompileError):
            load_module(json.dumps(payload))
