"""Unit tests for the µP4 lexer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import LexError
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import TokenKind as T


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop EOF


class TestBasics:
    def test_empty(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind is T.EOF

    def test_identifiers_and_keywords(self):
        assert kinds("header foo") == [T.KW_HEADER, T.IDENT]
        assert kinds("applyx apply") == [T.IDENT, T.KW_APPLY]

    def test_underscore_token(self):
        assert kinds("_") == [T.UNDERSCORE]
        assert kinds("_x") == [T.IDENT]

    def test_punctuation(self):
        assert kinds("( ) { } [ ] , ; : .") == [
            T.LPAREN, T.RPAREN, T.LBRACE, T.RBRACE, T.LBRACKET, T.RBRACKET,
            T.COMMA, T.SEMI, T.COLON, T.DOT,
        ]

    def test_operators(self):
        assert kinds("++ == != <= >= << >> && || &&&") == [
            T.CONCAT, T.EQ, T.NEQ, T.LE, T.GE, T.SHL, T.SHR, T.AND, T.OR, T.MASK,
        ]

    def test_dotdot_range(self):
        assert kinds("1..5") == [T.INT, T.RANGE, T.INT]

    def test_angle_vs_shift(self):
        assert kinds("a < b") == [T.IDENT, T.LANGLE, T.IDENT]
        assert kinds("a << b") == [T.IDENT, T.SHL, T.IDENT]


class TestNumbers:
    def test_decimal(self):
        tok = tokenize("1234")[0]
        assert tok.kind is T.INT and tok.value == (None, 1234)

    def test_hex(self):
        assert tokenize("0x0800")[0].value == (None, 0x800)
        assert tokenize("0XFF")[0].value == (None, 255)

    def test_binary(self):
        assert tokenize("0b1010")[0].value == (None, 10)

    def test_width_prefixed(self):
        assert tokenize("16w0x0800")[0].value == (16, 0x800)
        assert tokenize("8w255")[0].value == (8, 255)
        assert tokenize("48w0")[0].value == (48, 0)

    def test_width_overflow_rejected(self):
        with pytest.raises(LexError):
            tokenize("8w256")

    def test_underscore_separators(self):
        assert tokenize("1_000_000")[0].value == (None, 1000000)

    def test_bad_hex(self):
        with pytest.raises(LexError):
            tokenize("0x")

    @given(st.integers(0, 2**63))
    def test_decimal_roundtrip(self, n):
        assert tokenize(str(n))[0].value == (None, n)

    @given(st.integers(1, 64), st.integers(0, 2**64 - 1))
    def test_width_prefixed_roundtrip(self, w, v):
        v = v % (1 << w)
        assert tokenize(f"{w}w{v}")[0].value == (w, v)


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment here\n b") == [T.IDENT, T.IDENT]

    def test_block_comment(self):
        assert kinds("a /* multi\nline */ b") == [T.IDENT, T.IDENT]

    def test_unterminated_block(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_comment_only(self):
        assert kinds("// nothing") == []


class TestLocations:
    def test_line_tracking(self):
        toks = tokenize("a\n  b")
        assert toks[0].loc.line == 1 and toks[0].loc.column == 1
        assert toks[1].loc.line == 2 and toks[1].loc.column == 3

    def test_error_has_location(self):
        with pytest.raises(LexError) as exc:
            tokenize("abc\n  $")
        assert "2:3" in str(exc.value)


class TestStrings:
    def test_simple(self):
        tok = tokenize('"hello"')[0]
        assert tok.kind is T.STRING and tok.value == "hello"

    def test_escapes(self):
        assert tokenize(r'"a\nb"')[0].value == "a\nb"

    def test_unterminated(self):
        with pytest.raises(LexError):
            tokenize('"oops')
