"""Type checker coverage: generic externs, overloads, directions."""

import pytest

from repro.errors import TypeCheckError
from repro.frontend.typecheck import check_program

HDRS = """
header eth_h { bit<48> dst; bit<48> src; bit<16> etherType; }
header ip_h  { bit<8> ttl; bit<24> rest; }
struct hdr_t { eth_h eth; ip_h ip; }
"""


def wrap(parser_body="ex.extract(p, h.eth); transition accept;",
         control_body="", locals_=""):
    return check_program(
        HDRS
        + """
program G : implements Unicast<> {
  parser P(extractor ex, pkt p, out hdr_t h) {
    state start { %s }
  }
  control C(pkt p, inout hdr_t h, im_t im) {
    %s
    apply { %s }
  }
  control D(emitter em, pkt p, in hdr_t h) { apply { em.emit(p, h.eth); } }
}
"""
        % (parser_body, locals_, control_body)
    )


class TestGenericBinding:
    def test_extract_binds_header_type(self):
        mod = wrap("ex.extract(p, h.eth); ex.extract(p, h.ip); transition accept;")
        assert "G" in mod.programs

    def test_extract_non_header_rejected(self):
        # Extracting a whole struct is not allowed by the parse graph;
        # the checker binds H to the struct, the graph rejects later —
        # but extracting a scalar is rejected by direction/lvalue rules.
        with pytest.raises(TypeCheckError):
            wrap("ex.extract(p, 16w0); transition accept;")

    def test_emit_binds_header_type(self):
        wrap(control_body="")  # deparser emit checked in wrap itself

    def test_extract_three_arg_overload(self):
        src = HDRS.replace(
            "header ip_h  { bit<8> ttl; bit<24> rest; }",
            "header ip_h  { bit<8> ttl; varbit<32> rest; }",
        )
        mod = check_program(
            src
            + """
program G : implements Unicast<> {
  parser P(extractor ex, pkt p, out hdr_t h) {
    state start {
      ex.extract(p, h.eth);
      ex.extract(p, h.ip, (bit<32>) 16);
      transition accept;
    }
  }
  control C(pkt p, inout hdr_t h, im_t im) { apply { } }
  control D(emitter em, pkt p, in hdr_t h) { apply { } }
}
"""
        )
        assert "G" in mod.programs

    def test_wrong_arity_overload_rejected(self):
        with pytest.raises(TypeCheckError) as exc:
            wrap("ex.extract(p); transition accept;")
        assert "overload" in str(exc.value)

    def test_register_generic_infers_value_type(self):
        wrap(
            control_body="""
              bit<16> v;
              r.read(v, 32w0);
              r.write(32w0, v + 1);
            """,
            locals_="register() r;",
        )

    def test_register_inconsistent_binding_ok_per_call(self):
        # Each call site binds T independently (like p4c).
        wrap(
            control_body="""
              bit<16> v16;
              bit<8> v8;
              r.read(v16, 32w0);
              r.read(v8, 32w1);
            """,
            locals_="register() r;",
        )


class TestDirections:
    def test_extract_out_arg_must_be_lvalue(self):
        with pytest.raises(TypeCheckError):
            wrap("ex.extract(p, 8w0); transition accept;")

    def test_register_read_out_must_be_lvalue(self):
        with pytest.raises(TypeCheckError):
            wrap(control_body="r.read(8w0, 32w0);", locals_="register() r;")

    def test_const_not_assignable(self):
        with pytest.raises(TypeCheckError):
            check_program(
                HDRS
                + """
const bit<8> K = 1;
program G : implements Unicast<> {
  parser P(extractor ex, pkt p, out hdr_t h) {
    state start { transition accept; }
  }
  control C(pkt p, inout hdr_t h, im_t im) { apply { K = 2; } }
  control D(emitter em, pkt p, in hdr_t h) { apply { } }
}
"""
            )


class TestConstEval:
    def test_arith_folding(self):
        mod = check_program("const bit<16> A = (1 << 8) | 0x0F;")
        assert mod.consts["A"].value == 0x10F

    def test_reference_chain(self):
        mod = check_program(
            "const bit<16> A = 2; const bit<16> B = A * 3; const bit<16> C = B - A;"
        )
        assert mod.consts["C"].value == 4

    def test_non_const_rejected(self):
        with pytest.raises(TypeCheckError):
            check_program("const bit<16> A = B;")


class TestInterfaceStructure:
    def test_multiple_parsers_rejected(self):
        with pytest.raises(TypeCheckError):
            check_program(
                HDRS
                + """
program G : implements Unicast<> {
  parser P1(extractor ex, pkt p, out hdr_t h) { state start { transition accept; } }
  parser P2(extractor ex, pkt p, out hdr_t h) { state start { transition accept; } }
  control C(pkt p, inout hdr_t h, im_t im) { apply { } }
  control D(emitter em, pkt p, in hdr_t h) { apply { } }
}
"""
            )

    def test_two_main_controls_rejected(self):
        with pytest.raises(TypeCheckError):
            check_program(
                HDRS
                + """
program G : implements Unicast<> {
  parser P(extractor ex, pkt p, out hdr_t h) { state start { transition accept; } }
  control C1(pkt p, inout hdr_t h, im_t im) { apply { } }
  control C2(pkt p, inout hdr_t h, im_t im) { apply { } }
  control D(emitter em, pkt p, in hdr_t h) { apply { } }
}
"""
            )

    def test_two_mains_rejected(self):
        with pytest.raises(TypeCheckError):
            check_program(
                HDRS
                + """
program G : implements Unicast<> {
  parser P(extractor ex, pkt p, out hdr_t h) { state start { transition accept; } }
  control C(pkt p, inout hdr_t h, im_t im) { apply { } }
  control D(emitter em, pkt p, in hdr_t h) { apply { } }
}
G(P, C, D) main;
G(P, C, D) main;
"""
            )
