"""Unit tests for the µP4 type checker."""

import pytest

from repro.errors import TypeCheckError
from repro.frontend import astnodes as ast
from repro.frontend.typecheck import check_program

ETH = "header eth_h { bit<48> dst; bit<48> src; bit<16> etherType; }\n"
HDRS = ETH + "struct hdr_t { eth_h eth; }\n"


def wrap_control(body, locals_="", params="pkt p, inout hdr_t h, im_t im"):
    return check_program(
        HDRS
        + """
program T : implements Unicast<> {
  parser P(extractor ex, pkt p, out hdr_t h) {
    state start { ex.extract(p, h.eth); transition accept; }
  }
  control C(%s) {
    %s
    apply { %s }
  }
  control D(emitter em, pkt p, in hdr_t h) { apply { em.emit(p, h.eth); } }
}
"""
        % (params, locals_, body)
    )


class TestTypeDecls:
    def test_header_registered(self):
        mod = check_program(ETH)
        assert isinstance(mod.types["eth_h"], ast.HeaderType)
        assert mod.types["eth_h"].byte_width == 14

    def test_struct_of_headers(self):
        mod = check_program(HDRS)
        assert isinstance(mod.types["hdr_t"], ast.StructType)
        assert isinstance(mod.types["hdr_t"].field_type("eth"), ast.HeaderType)

    def test_duplicate_type_rejected(self):
        with pytest.raises(TypeCheckError):
            check_program(ETH + ETH)

    def test_unknown_field_type_rejected(self):
        with pytest.raises(TypeCheckError):
            check_program("struct s_t { nothere_t x; }")

    def test_header_with_struct_field_rejected(self):
        with pytest.raises(TypeCheckError):
            check_program("struct s_t { bit<8> x; } header h_t { s_t bad; }")

    def test_typedef_resolves(self):
        mod = check_program("typedef bit<9> port_t; struct m_t { port_t p; }")
        assert mod.types["m_t"].field_type("p").width == 9

    def test_const_evaluated(self):
        mod = check_program("const bit<16> A = 0x800; const bit<16> B = A + 1;")
        assert mod.consts["B"].value == 0x801

    def test_enum(self):
        mod = check_program("enum c_t { RED, BLUE }")
        assert mod.types["c_t"].members == ["RED", "BLUE"]

    def test_builtin_meta_t_present(self):
        mod = check_program("")
        assert "IN_PORT" in mod.types["meta_t"].members


class TestProgramStructure:
    def test_roles_assigned(self):
        mod = wrap_control("")
        info = mod.programs["T"]
        assert info.parser.name == "P"
        assert info.control.name == "C"
        assert info.deparser.name == "D"

    def test_user_params_derived(self):
        mod = wrap_control(
            "", params="pkt p, inout hdr_t h, im_t im, out bit<16> nh, in bit<8> sel"
        )
        info = mod.programs["T"]
        assert [(q.direction, q.name) for q in info.user_params] == [
            ("out", "nh"),
            ("in", "sel"),
        ]

    def test_header_param_identified(self):
        mod = wrap_control("")
        assert mod.programs["T"].header_param.name == "h"

    def test_unknown_interface_rejected(self):
        with pytest.raises(TypeCheckError):
            check_program(
                "program X : implements Nope<> { control C(pkt p) { apply {} } }"
            )

    def test_missing_parser_rejected_for_unicast(self):
        with pytest.raises(TypeCheckError):
            check_program(
                "program X : implements Unicast<> { control C(pkt p) { apply {} } }"
            )

    def test_orchestration_needs_no_parser(self):
        mod = check_program(
            "struct e_t {}\n"
            "program O : implements Orchestration<> {"
            "  control C(pkt p, im_t im) { apply { } } }"
        )
        assert mod.programs["O"].parser is None

    def test_main_instantiation(self):
        mod = wrap_control("")
        assert mod.main is None
        mod2 = check_program(
            HDRS
            + """
program T : implements Unicast<> {
  parser P(extractor ex, pkt p, out hdr_t h) { state start { transition accept; } }
  control C(pkt p, inout hdr_t h, im_t im) { apply { } }
  control D(emitter em, pkt p, in hdr_t h) { apply { } }
}
T(P, C, D) main;
"""
        )
        assert mod2.main == "T"
        assert mod2.main_program().name == "T"

    def test_main_unknown_program_rejected(self):
        with pytest.raises(TypeCheckError):
            check_program("Nothing(P) main;")

    def test_parser_without_start_rejected(self):
        with pytest.raises(TypeCheckError):
            check_program(
                HDRS
                + "program T : implements Unicast<> {"
                "  parser P(extractor ex, pkt p, out hdr_t h) {"
                "    state begin { transition accept; } }"
                "  control C(pkt p, inout hdr_t h, im_t im) { apply { } }"
                "  control D(emitter em, pkt p, in hdr_t h) { apply { } } }"
            )


class TestExpressions:
    def test_field_width(self):
        wrap_control("h.eth.etherType = 16w0x800;")

    def test_width_mismatch_rejected(self):
        with pytest.raises(TypeCheckError):
            wrap_control("h.eth.etherType = h.eth.dst;")

    def test_literal_adapts_to_width(self):
        wrap_control("h.eth.etherType = 2048;")

    def test_literal_overflow_rejected(self):
        with pytest.raises(TypeCheckError):
            wrap_control("h.eth.etherType = 65536;")

    def test_concat_widths(self):
        wrap_control("bit<64> x = h.eth.etherType ++ h.eth.dst;")

    def test_concat_wrong_target_rejected(self):
        with pytest.raises(TypeCheckError):
            wrap_control("bit<32> x = h.eth.etherType ++ h.eth.dst;")

    def test_slice(self):
        wrap_control("bit<8> b = h.eth.etherType[15:8];")

    def test_slice_out_of_range_rejected(self):
        with pytest.raises(TypeCheckError):
            wrap_control("bit<8> b = h.eth.etherType[16:9];")

    def test_arith_same_width(self):
        wrap_control("h.eth.etherType = h.eth.etherType + 1;")

    def test_compare_yields_bool(self):
        wrap_control("if (h.eth.etherType == 0x800) { h.eth.etherType = 0; }")

    def test_if_needs_bool(self):
        with pytest.raises(TypeCheckError):
            wrap_control("if (h.eth.etherType) { }")

    def test_isvalid_is_bool(self):
        wrap_control("if (h.eth.isValid()) { }")

    def test_unknown_name_rejected(self):
        with pytest.raises(TypeCheckError):
            wrap_control("ghost = 1;")

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeCheckError):
            wrap_control("h.eth.vlanId = 1;")

    def test_cast(self):
        wrap_control("bit<8> x = (bit<8>) h.eth.etherType;")

    def test_enum_member_access(self):
        wrap_control("bit<32> ts = im.get_value(meta_t.IN_TIMESTAMP);")

    def test_bad_enum_member_rejected(self):
        with pytest.raises(TypeCheckError):
            wrap_control("bit<32> ts = im.get_value(meta_t.NOPE);")


class TestCallsAndDirections:
    def test_im_set_out_port(self):
        wrap_control("im.set_out_port(8w3);")

    def test_extern_arg_width_rejected(self):
        with pytest.raises(TypeCheckError):
            wrap_control("im.set_out_port(16w3);")

    def test_out_arg_must_be_lvalue(self):
        src = (
            HDRS
            + "M(pkt p, im_t im, out bit<16> nh);\n"
            + """
program T : implements Unicast<> {
  parser P(extractor ex, pkt p, out hdr_t h) { state start { transition accept; } }
  control C(pkt p, inout hdr_t h, im_t im) {
    M() m_i;
    apply { m_i.apply(p, im, 16w0); }
  }
  control D(emitter em, pkt p, in hdr_t h) { apply { } }
}
"""
        )
        with pytest.raises(TypeCheckError):
            check_program(src)

    def test_module_apply_checks_arity(self):
        src = (
            HDRS
            + "M(pkt p, im_t im, out bit<16> nh);\n"
            + """
program T : implements Unicast<> {
  parser P(extractor ex, pkt p, out hdr_t h) { state start { transition accept; } }
  control C(pkt p, inout hdr_t h, im_t im) {
    M() m_i;
    apply { bit<16> nh; m_i.apply(p, im); }
  }
  control D(emitter em, pkt p, in hdr_t h) { apply { } }
}
"""
        )
        with pytest.raises(TypeCheckError):
            check_program(src)

    def test_unknown_extern_method_rejected(self):
        with pytest.raises(TypeCheckError):
            wrap_control("im.launch_missiles();")

    def test_action_call_args(self):
        wrap_control(
            "a(1);",
            locals_="action a(bit<8> x) { im.set_out_port(x); }",
        )

    def test_action_call_arity_rejected(self):
        with pytest.raises(TypeCheckError):
            wrap_control("a();", locals_="action a(bit<8> x) { }")

    def test_recirculate_builtin(self):
        wrap_control("recirculate(h.eth.etherType);")

    def test_setvalid(self):
        wrap_control("h.eth.setValid(); h.eth.setInvalid();")

    def test_mc_engine_instance(self):
        wrap_control(
            "mce.set_mc_group(16w5);",
            locals_="mc_engine() mce;",
        )


class TestTables:
    def test_table_checks(self):
        wrap_control(
            "t.apply();",
            locals_="""
              action a(bit<8> x) { im.set_out_port(x); }
              action drop() { }
              table t {
                key = { h.eth.etherType : exact; }
                actions = { a; drop; }
                default_action = drop();
                const entries = { 0x0800 : a(1); }
              }
            """,
        )

    def test_unknown_action_rejected(self):
        with pytest.raises(TypeCheckError):
            wrap_control(
                "t.apply();",
                locals_="table t { key = { h.eth.etherType : exact; } actions = { ghost; } }",
            )

    def test_bad_match_kind_rejected(self):
        with pytest.raises(TypeCheckError):
            wrap_control(
                "t.apply();",
                locals_="""
                  action a() { }
                  table t { key = { h.eth.etherType : fuzzy; } actions = { a; } }
                """,
            )

    def test_entry_arity_rejected(self):
        with pytest.raises(TypeCheckError):
            wrap_control(
                "t.apply();",
                locals_="""
                  action a() { }
                  table t {
                    key = { h.eth.etherType : exact; h.eth.dst : exact; }
                    actions = { a; }
                    const entries = { 0x800 : a(); }
                  }
                """,
            )

    def test_default_not_listed_rejected(self):
        with pytest.raises(TypeCheckError):
            wrap_control(
                "t.apply();",
                locals_="""
                  action a() { }
                  action b() { }
                  table t {
                    key = { h.eth.etherType : exact; }
                    actions = { a; }
                    default_action = b();
                  }
                """,
            )

    def test_table_apply_with_args_rejected(self):
        with pytest.raises(TypeCheckError):
            wrap_control(
                "t.apply(h);",
                locals_="""
                  action a() { }
                  table t { key = { h.eth.etherType : exact; } actions = { a; } }
                """,
            )


class TestParsers:
    def test_select_keyset_widths(self):
        check_program(
            HDRS
            + """
program T : implements Unicast<> {
  parser P(extractor ex, pkt p, out hdr_t h) {
    state start {
      ex.extract(p, h.eth);
      transition select(h.eth.etherType) {
        0x0800 : accept;
        0x86DD &&& 0xFFFF : accept;
        default : accept;
      }
    }
  }
  control C(pkt p, inout hdr_t h, im_t im) { apply { } }
  control D(emitter em, pkt p, in hdr_t h) { apply { } }
}
"""
        )

    def test_transition_to_unknown_state_rejected(self):
        with pytest.raises(TypeCheckError):
            check_program(
                HDRS
                + """
program T : implements Unicast<> {
  parser P(extractor ex, pkt p, out hdr_t h) {
    state start { transition nowhere; }
  }
  control C(pkt p, inout hdr_t h, im_t im) { apply { } }
  control D(emitter em, pkt p, in hdr_t h) { apply { } }
}
"""
            )

    def test_select_arity_mismatch_rejected(self):
        with pytest.raises(TypeCheckError):
            check_program(
                HDRS
                + """
program T : implements Unicast<> {
  parser P(extractor ex, pkt p, out hdr_t h) {
    state start {
      ex.extract(p, h.eth);
      transition select(h.eth.etherType, h.eth.dst) {
        0x0800 : accept;
      }
    }
  }
  control C(pkt p, inout hdr_t h, im_t im) { apply { } }
  control D(emitter em, pkt p, in hdr_t h) { apply { } }
}
"""
            )


class TestSwitch:
    def test_switch_literal_cases(self):
        wrap_control(
            "switch (h.eth.etherType) { 0x0800 : { } 0x86DD : { } default : { } }"
        )

    def test_switch_case_width_overflow_rejected(self):
        with pytest.raises(TypeCheckError):
            wrap_control("switch (h.eth.etherType) { 0x10000 : { } }")
