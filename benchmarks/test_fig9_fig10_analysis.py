"""Figures 9 and 10 — static analysis and parser→MAT transformation.

Fig. 9's worked example fixes concrete numbers the implementation must
hit (El(caller) = 78 B via Eq. 3, byte-stack = 98 B via Eq. 4); Fig. 10
fixes the parser-MAT structure (two paths, 54/74 B, per-path entries,
forward substitution).  The benchmarks time both analyses, which the
paper argues are fast ("can be done in linear time", §5.2).
"""

import pytest

from repro.ir.parse_graph import build_parse_graph
from repro.midend.analysis import analyze
from repro.midend.bytestack import ByteStack
from repro.midend.linker import link_modules
from repro.midend.parser_to_mat import parser_to_mat

from tests.midend.conftest import check
from tests.midend.test_analysis_fig9 import CALLEE1, CALLEE2, CALLER
from tests.midend.test_parse_graph import FIG10_PARSER


@pytest.fixture(scope="module")
def fig9_linked():
    return link_modules(
        check(CALLER, "caller"), [check(CALLEE1, "c1"), check(CALLEE2, "c2")]
    )


@pytest.fixture(scope="module")
def fig10_parser():
    return check(FIG10_PARSER).programs["Fig10"].parser


class TestFig9Numbers:
    def test_extract_length_78(self, fig9_linked):
        assert analyze(fig9_linked).extract_length == 78

    def test_byte_stack_98(self, fig9_linked):
        assert analyze(fig9_linked).byte_stack_size == 98


class TestFig10Structure:
    def test_two_entries_one_per_path(self, fig10_parser):
        mat = parser_to_mat(fig10_parser, 0, ByteStack(94), "m")
        assert len(mat.table.const_entries) == 2
        assert len(mat.paths) == 2

    def test_default_is_parser_error(self, fig10_parser):
        mat = parser_to_mat(fig10_parser, 0, ByteStack(94), "m")
        assert mat.table.default_action.startswith("set_parser_error")

    def test_length_guard_per_path(self, fig10_parser):
        """Fig. 10c's validity test: each entry requires the packet to be
        long enough for its path (54 or 74 bytes)."""
        mat = parser_to_mat(fig10_parser, 0, ByteStack(94), "m")
        lows = sorted(
            entry.keysets[0].lo.value for entry in mat.table.const_entries
        )
        assert lows == [54, 74]


def test_bench_fig9_analysis(benchmark, fig9_linked):
    """Benchmark: the Eq. 1–4 operational-region analysis."""
    benchmark(lambda: analyze(fig9_linked))


def test_bench_fig10_parser_to_mat(benchmark, fig10_parser):
    """Benchmark: parser path enumeration + MAT synthesis."""
    bs = ByteStack(94)
    benchmark(lambda: parser_to_mat(fig10_parser, 0, bs, "m"))
