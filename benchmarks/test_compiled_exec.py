"""Execution backends vs the tree-walking interpreter.

The behavioral target's packet rate is bounded by Python dispatch cost:
the reference interpreter re-walks the composed AST, re-resolves names,
and re-computes widths/masks for every packet.  The ``compiled`` backend
(:mod:`repro.targets.compiled`) pays those costs once at build time and
runs each packet as nested pre-bound closures over flat register slots.
The ``codegen`` backend (:mod:`repro.targets.codegen`) goes one step
further: it emits the whole pipeline as Python source — locals instead
of context slots, constants inlined — and ``compile()``s it to a single
code object, with an optional struct-of-arrays batch fast path.

This harness measures every seam backend end-to-end on two workloads:

* **exact-heavy** — P4 micro with the standard FIB installed; match-
  action dominated (lpm + exact lookups, header rewrites);
* **parser-heavy** — P4 monolithic with no entries installed: every
  packet walks the native parser loop, extraction, and deparser and
  misses to default actions.  AST re-walking hurts most here, and the
  compiled backend must show >= 3x.

plus the codegen batch (struct-of-arrays) mode measured separately
against per-packet codegen — digest-identical by construction — and one
sharded-engine soak per backend (same seed), asserting the verdict
digests are byte-identical: speed must not change semantics.
Results go to ``BENCH_compiled_exec.json`` at the repo root (uploaded
as a CI artifact by the bench-smoke job).

Set ``BENCH_COMPILED_QUICK=1`` for a fast smoke run (CI).
"""

import hashlib
import json
import os
import time
from pathlib import Path

import pytest

from repro.lib.catalog import build_monolithic, build_pipeline
from repro.targets.backends import EXEC_BACKENDS, make_pipeline
from repro.targets.vector import NUMPY_AVAILABLE
from repro.targets.engine import EngineConfig
from repro.targets.runtime_api import RuntimeAPI
from repro.targets.soak import SoakConfig, run_soak
from tests.integration.helpers import ENTRY_SETS, eth_ipv4, eth_ipv6

QUICK = os.environ.get("BENCH_COMPILED_QUICK") == "1"
COUNT = 300 if QUICK else 2000
REPEATS = 2 if QUICK else 4
# CI runners are noisy; the >= 3x claim is asserted on full runs only.
MIN_PARSER_SPEEDUP = 1.5 if QUICK else 3.0
# Codegen must beat the closure backend by a clear margin on both
# workloads (the ROADMAP's "next 10x on the hot path" clause).
MIN_CODEGEN_VS_COMPILED = 1.2 if QUICK else 1.5
# The vectorized backend must clearly beat codegen's batched SoA path on
# the exact-heavy workload (ISSUE 10 acceptance gate: >= 2x full runs).
MIN_VECTOR_VS_CODEGEN_BATCH = 1.2 if QUICK else 2.0
OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_compiled_exec.json"

#: Backends measured this run; ``vector`` drops out without the
#: optional numpy extra (the workload blocks then simply omit it).
BACKENDS = tuple(
    b for b in EXEC_BACKENDS if b != "vector" or NUMPY_AVAILABLE
)

RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def write_results():
    yield
    payload = {
        "bench": "compiled_exec",
        "quick": QUICK,
        "packets_per_run": COUNT,
        "workloads": RESULTS,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def build_backend(program, mode, backend, entries=True):
    """A pipeline executor, optionally with the standard entry set."""
    builder = build_pipeline if mode == "micro" else build_monolithic
    composed = builder(program)
    start = time.perf_counter()
    instance = make_pipeline(composed, exec_backend=backend)
    build_seconds = time.perf_counter() - start
    if entries:
        api = RuntimeAPI(instance)
        for table, matches, act_micro, act_mono, args in ENTRY_SETS[program]:
            action = act_micro if mode == "micro" else act_mono
            api.add_entry(table, matches, action, args)
    return instance, build_seconds


def pkt_rate(instance, packets):
    """Best-of-N packets/sec through ``instance.process``."""
    for pkt in packets:  # warmup
        instance.process(pkt.copy(), 1)
    best = 0.0
    for _ in range(REPEATS):
        start = time.perf_counter()
        for i in range(COUNT):
            instance.process(packets[i % len(packets)].copy(), 1)
        best = max(best, COUNT / (time.perf_counter() - start))
    return best


def run_pair(name, program, mode, packets, entries=True):
    """Time every backend on one workload; record + sanity check."""
    rates, builds = {}, {}
    for backend in BACKENDS:
        instance, build_seconds = build_backend(
            program, mode, backend, entries=entries
        )
        builds[backend] = build_seconds
        rates[backend] = pkt_rate(instance, packets)
        if entries:
            # The corpus must actually flow: at least one packet emitted.
            outs = instance.process(packets[0].copy(), 1)
            assert outs, f"{backend} dropped the whole corpus on {program}"
    block = {
        "program": program,
        "mode": mode,
        "entries_installed": entries,
        "packets": COUNT,
    }
    for backend in BACKENDS:
        block[f"{backend}_pkts_per_sec"] = round(rates[backend])
        block[f"{backend}_usec_per_pkt"] = round(1e6 / rates[backend], 1)
        if backend != "interp":
            block[f"{backend}_build_seconds"] = round(builds[backend], 4)
    block["speedup"] = round(rates["compiled"] / rates["interp"], 2)
    block["codegen_speedup"] = round(rates["codegen"] / rates["interp"], 2)
    block["codegen_vs_compiled"] = round(
        rates["codegen"] / rates["compiled"], 2
    )
    RESULTS[name] = block
    return block


def test_exact_heavy():
    """Match-action dominated: P4 micro with its FIB installed."""
    packets = [eth_ipv4(), eth_ipv4(dst="10.1.2.3"), eth_ipv6()]
    result = run_pair("exact_heavy_P4_micro", "P4", "micro", packets)
    # Table lookups go through the same TableRuntime on every backend,
    # so the gain here is dispatch-only; it must still be a clear win.
    assert result["speedup"] >= (1.2 if QUICK else 2.0), result
    assert result["codegen_vs_compiled"] >= MIN_CODEGEN_VS_COMPILED, result


def test_parser_heavy():
    """Parser/extraction dominated: P4 monolithic, native parser loop,
    no entries installed — every packet walks the parser and deparser
    and misses to the default action, so AST-dispatch cost dominates."""
    packets = [eth_ipv4(), eth_ipv4(dst="10.1.2.3"), eth_ipv6()]
    result = run_pair(
        "parser_heavy_P4_mono", "P4", "mono", packets, entries=False
    )
    assert result["speedup"] >= MIN_PARSER_SPEEDUP, result
    assert result["codegen_vs_compiled"] >= MIN_CODEGEN_VS_COMPILED, result


def test_batch_soa():
    """Codegen batch (struct-of-arrays) mode vs per-packet codegen.

    Measured through the same generated module: parse all lanes into a
    flat byte arena, run the body per lane, deparse survivors at the
    end.  The gain over per-packet codegen is the amortized per-call
    overhead (one Python call per 256 lanes instead of one per packet);
    the body itself is already generated code either way.  The verdict-
    relevant outputs must be identical lane for lane — digest parity is
    asserted here on the raw output bytes/ports.
    """
    instance, _ = build_backend("P4", "micro", "codegen", entries=True)
    assert instance.batch_supported
    packets = [eth_ipv4(), eth_ipv4(dst="10.1.2.3"), eth_ipv6()]
    lanes = 256
    datas = [packets[i % len(packets)].tobytes() for i in range(lanes)]
    ports = [1] * lanes
    pkts = [packets[i % len(packets)] for i in range(lanes)]

    def lane_digest(results):
        digest = hashlib.sha256()
        for outputs in results:
            for out in outputs:
                digest.update(out.packet.tobytes())
                digest.update(bytes((out.port,)))
        return digest.hexdigest()

    # Per-packet reference (and rate).
    per_pkt = []
    for data, port, pkt in zip(datas, ports, pkts):
        per_pkt.append(instance.process(pkt, port))
    rounds = max(1, COUNT // lanes)
    start = time.perf_counter()
    for _ in range(rounds):
        for data, port, pkt in zip(datas, ports, pkts):
            instance.process(pkt, port)
    per_pkt_rate = rounds * lanes / (time.perf_counter() - start)

    # Batch mode: identical lanes, one call per batch.
    batch = instance.process_soa(datas, ports, pkts)
    assert all(exc is None for _, _, exc in batch)
    assert lane_digest([outs for outs, _, _ in batch]) == lane_digest(
        per_pkt
    ), "batch mode diverged from per-packet codegen"
    start = time.perf_counter()
    for _ in range(rounds):
        instance.process_soa(datas, ports, pkts)
    batch_rate = rounds * lanes / (time.perf_counter() - start)

    RESULTS["batch_soa_P4_micro"] = {
        "program": "P4",
        "mode": "micro",
        "lanes_per_batch": lanes,
        "packets": rounds * lanes,
        "codegen_pkts_per_sec": round(per_pkt_rate),
        "codegen_batch_pkts_per_sec": round(batch_rate),
        "batch_vs_per_packet": round(batch_rate / per_pkt_rate, 2),
        "digests_match": True,
    }


def test_sharded_engine_per_backend():
    """One sharded soak per backend: same digest, comparable elapsed."""
    config = dict(
        programs=["P4"],
        packets=1000 if QUICK else 5000,
        seed=1234,
        fault_rate=0.1,
    )
    block = {}
    digests = {}
    for backend in BACKENDS:
        start = time.perf_counter()
        summary = run_soak(
            SoakConfig(exec_backend=backend, **config),
            engine=EngineConfig(workers=2),
        )
        elapsed = time.perf_counter() - start
        assert summary["ok"], summary
        digests[backend] = summary["digest"]
        block[backend] = {
            "elapsed_seconds": round(elapsed, 3),
            "digest": summary["digest"],
        }
    assert len(set(digests.values())) == 1, digests
    RESULTS["sharded_engine_P4"] = {
        "workers": 2,
        "packets": config["packets"],
        "digests_match": True,
        **block,
    }


@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="numpy not installed")
def test_vector_batch():
    """Columnwise numpy batches vs codegen's per-lane SoA batches.

    Same exact-heavy P4 workload, same arena layout, swept over the
    ``--batch-lanes`` settings the engine exposes: larger batches
    amortize more per numpy op, so the sweep shows where the curve
    flattens.  Lane digests must match codegen's batch output bit for
    bit at every lane count, and the 256-lane point gates the
    ISSUE 10 acceptance ratio.
    """
    codegen, _ = build_backend("P4", "micro", "codegen", entries=True)
    vector, _ = build_backend("P4", "micro", "vector", entries=True)
    assert vector.vector_plan is not None, vector.vector_decline_reason
    packets = [eth_ipv4(), eth_ipv4(dst="10.1.2.3"), eth_ipv6()]

    def lane_digest(results):
        digest = hashlib.sha256()
        for outputs, reason, exc in results:
            assert exc is None
            for out in outputs or ():
                digest.update(out.packet.tobytes())
                digest.update(bytes((out.port,)))
        return digest.hexdigest()

    def batch_rate(instance, datas, ports, pkts, rounds):
        instance.process_soa(datas, ports, pkts)  # warmup
        best = 0.0
        for _ in range(REPEATS):
            start = time.perf_counter()
            for _ in range(rounds):
                instance.process_soa(datas, ports, pkts)
            best = max(best, rounds * len(datas) / (time.perf_counter() - start))
        return best

    sweep = {}
    ratio_at_256 = None
    for lanes in (64, 256, 1024):
        datas = [packets[i % len(packets)].tobytes() for i in range(lanes)]
        ports = [1] * lanes
        pkts = [packets[i % len(packets)] for i in range(lanes)]
        assert lane_digest(vector.process_soa(datas, ports, pkts)) == lane_digest(
            codegen.process_soa(datas, ports, pkts)
        ), f"vector diverged from codegen batch at {lanes} lanes"
        rounds = max(1, (COUNT * 4) // lanes)
        cg = batch_rate(codegen, datas, ports, pkts, rounds)
        vec = batch_rate(vector, datas, ports, pkts, rounds)
        sweep[str(lanes)] = {
            "codegen_batch_pkts_per_sec": round(cg),
            "vector_batch_pkts_per_sec": round(vec),
            "vector_vs_codegen_batch": round(vec / cg, 2),
        }
        if lanes == 256:
            ratio_at_256 = vec / cg
    RESULTS["vector_batch_P4_micro"] = {
        "program": "P4",
        "mode": "micro",
        "digests_match": True,
        "gate_lanes": 256,
        "min_vector_vs_codegen_batch": MIN_VECTOR_VS_CODEGEN_BATCH,
        "lanes_sweep": sweep,
    }
    assert ratio_at_256 >= MIN_VECTOR_VS_CODEGEN_BATCH, sweep
