"""Telemetry overhead: metrics collection must stay within 5% of off.

Every hot-path report site (``METRICS.inc``/``observe`` in the switch,
interpreter, and compiled backend) is gated on a single ``enabled``
attribute check, captured once per packet as ``metrics_on``.  This
harness measures the end-to-end packet rate of the exact-heavy P4 micro
workload with the registry disabled (the default) and enabled (what
``--stats-port``/``--metrics-out``/``--metrics`` turn on), on both
execution backends, and asserts the enabled run keeps >= 95% of the
disabled rate.

The point is to keep telemetry honest: live publishing is allowed to
cost something *between* packets (snapshot + queue put once per epoch),
but per-packet instrumentation — the part that scales with traffic —
must be near-free.  Results go to ``BENCH_telemetry_overhead.json`` at
the repo root (uploaded as a CI artifact by the bench-smoke job).

Set ``BENCH_TELEMETRY_QUICK=1`` for a fast smoke run (CI); quick runs
use a lenient threshold because shared runners are noisy.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.lib.catalog import build_pipeline
from repro.obs.metrics import METRICS
from repro.targets.backends import make_pipeline
from repro.targets.runtime_api import RuntimeAPI
from tests.integration.helpers import ENTRY_SETS, eth_ipv4, eth_ipv6

QUICK = os.environ.get("BENCH_TELEMETRY_QUICK") == "1"
COUNT = 300 if QUICK else 2000
REPEATS = 2 if QUICK else 5
# The contract is <= 5% overhead; CI smoke runs get slack for noise.
MAX_OVERHEAD = 0.25 if QUICK else 0.05
OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_telemetry_overhead.json"

RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def write_results():
    yield
    payload = {
        "bench": "telemetry_overhead",
        "quick": QUICK,
        "packets_per_run": COUNT,
        "max_overhead": MAX_OVERHEAD,
        "workloads": RESULTS,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def build_instance(backend):
    instance = make_pipeline(build_pipeline("P4"), exec_backend=backend)
    api = RuntimeAPI(instance)
    for table, matches, act_micro, _act_mono, args in ENTRY_SETS["P4"]:
        api.add_entry(table, matches, act_micro, args)
    return instance


def _one_round(instance, packets):
    start = time.perf_counter()
    for i in range(COUNT):
        instance.process(packets[i % len(packets)].copy(), 1)
    return COUNT / (time.perf_counter() - start)


def paired_rates(instance, packets):
    """Best-of-N packets/sec with telemetry off and on, measured in
    interleaved rounds so machine-load drift hits both states equally
    instead of biasing whichever ran second."""
    for pkt in packets:  # warmup
        instance.process(pkt.copy(), 1)
    best_off = best_on = 0.0
    for _ in range(REPEATS):
        best_off = max(best_off, _one_round(instance, packets))
        METRICS.enable()
        try:
            best_on = max(best_on, _one_round(instance, packets))
        finally:
            METRICS.disable()
    return best_off, best_on


@pytest.mark.parametrize("backend", ["interp", "compiled"])
def test_overhead_within_budget(backend):
    packets = [eth_ipv4(), eth_ipv4(dst="10.1.2.3"), eth_ipv6()]
    instance = build_instance(backend)
    assert METRICS.enabled is False  # measuring the real default
    METRICS.reset()
    try:
        rate_off, rate_on = paired_rates(instance, packets)
        observed = METRICS.histogram("pipeline.latency_us.lookup")
    finally:
        METRICS.reset()
    # The instrumented run must actually have recorded latencies —
    # otherwise we measured nothing.
    assert observed is not None and observed["count"] > 0
    overhead = 1.0 - rate_on / rate_off
    RESULTS[f"exact_heavy_P4_micro_{backend}"] = {
        "backend": backend,
        "packets": COUNT,
        "telemetry_off_pkts_per_sec": round(rate_off),
        "telemetry_on_pkts_per_sec": round(rate_on),
        "overhead_fraction": round(overhead, 4),
        "budget": MAX_OVERHEAD,
    }
    assert overhead <= MAX_OVERHEAD, RESULTS[f"exact_heavy_P4_micro_{backend}"]
