"""Recovery overhead: a supervised restart must cost bounded wall-clock
and change nothing about the result.

The self-healing pool (DESIGN.md §14) recovers a killed replica by
respawning it, replaying its deterministic prefix up to the completed
watermark, and redispatching the unacknowledged suffix.  Both halves
are O(stream), so recovery cost is a bounded multiple of the clean
run — this harness kills one shard mid-stream and asserts:

* the merged digest is bit-identical to the undisturbed run (the whole
  point of deterministic recovery), and
* the disturbed run finishes within ``MAX_SLOWDOWN`` x the clean
  wall-clock (replay + redispatch + backoff, not a hang).

Results go to ``BENCH_chaos_recovery.json`` at the repo root (uploaded
as a CI artifact).  Set ``BENCH_CHAOS_QUICK=1`` for a fast smoke run;
quick runs use a lenient bound because shared runners are noisy.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.targets.engine import EngineConfig
from repro.targets.faults import ChaosPlan
from repro.targets.pool import WorkerPool
from repro.targets.soak import SoakConfig
from repro.targets.supervision import RestartPolicy

QUICK = os.environ.get("BENCH_CHAOS_QUICK") == "1"
PACKETS = 2000 if QUICK else 10_000
WORKERS = 2
# A restart replays at most the whole stream once and redispatches the
# suffix; with backoff that bounds one-kill recovery well under one
# extra clean-run of work.  CI smoke runs get generous slack.
MAX_SLOWDOWN = 8.0 if QUICK else 3.0
OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_chaos_recovery.json"

RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def write_results():
    yield
    payload = {
        "bench": "chaos_recovery",
        "quick": QUICK,
        "packets": PACKETS,
        "workers": WORKERS,
        "max_slowdown": MAX_SLOWDOWN,
        "runs": RESULTS,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def _config() -> SoakConfig:
    return SoakConfig(
        programs=["P4"], packets=PACKETS, seed=1234, fault_rate=0.1
    )


def _run(chaos=None):
    engine = EngineConfig(
        workers=WORKERS,
        chaos=chaos,
        restart=RestartPolicy(backoff_base_s=0.01, backoff_max_s=0.05,
                              jitter=0.0),
    )
    start = time.perf_counter()
    with WorkerPool(engine) as pool:
        block = pool.submit(_config(), "P4")
    return block, time.perf_counter() - start


def test_single_kill_recovery_cost_and_digest():
    clean_block, clean_s = _run()
    chaos = ChaosPlan.from_specs(f"kill:shard=0@pkt={PACKETS // 2}")
    killed_block, killed_s = _run(chaos)

    assert killed_block["digest"] == clean_block["digest"]
    assert killed_block["restarts"] == {"0": 1}
    assert killed_block["uncaught"] == []

    slowdown = killed_s / max(clean_s, 1e-9)
    RESULTS["single_kill"] = {
        "clean_s": round(clean_s, 4),
        "killed_s": round(killed_s, 4),
        "slowdown": round(slowdown, 3),
        "digest_equal": True,
        "restarts": killed_block["restarts"],
    }
    assert slowdown <= MAX_SLOWDOWN, (
        f"recovery cost {slowdown:.2f}x exceeds bound {MAX_SLOWDOWN}x "
        f"(clean {clean_s:.2f}s, killed {killed_s:.2f}s)"
    )
