"""Table 1 — composing µP4 modules into dataplane programs P1–P7.

Regenerates the composition matrix and verifies that every composed
program actually compiles end-to-end for both targets (the table's
implicit claim), benchmarking the full µP4C pipeline per program.
"""

import pytest

from repro.backend.v1model import V1ModelBackend
from repro.lib.catalog import (
    COMPOSITIONS,
    MODULE_MATRIX,
    MODULES,
    PROGRAMS,
    build_pipeline,
    composition_matrix,
    link_composition,
)
from repro.midend.inline import compose


def test_print_table1(capsys):
    with capsys.disabled():
        print("\n=== Table 1: composing µP4 modules ===")
        print(composition_matrix())


class TestMatrixContents:
    def test_all_programs_present(self):
        assert PROGRAMS == ["P1", "P2", "P3", "P4", "P5", "P6", "P7"]

    def test_eth_in_every_program(self):
        assert all(MODULE_MATRIX["Eth"][p] for p in PROGRAMS)

    def test_specialty_modules_unique(self):
        for module in ("ACL", "MPLS", "NAT", "NPTv6", "SRv4", "SRv6"):
            assert sum(MODULE_MATRIX[module][p] for p in PROGRAMS) == 1

    def test_recipes_match_matrix(self):
        leaf_of = {
            "ACL": "acl", "MPLS": "mpls", "NAT": "nat",
            "NPTv6": "nptv6", "SRv4": "srv4", "SRv6": "srv6",
        }
        for module, programs in MODULE_MATRIX.items():
            for prog, used in programs.items():
                if module in leaf_of:
                    assert (leaf_of[module] in COMPOSITIONS[prog]) == used


@pytest.mark.parametrize("name", PROGRAMS)
def test_composition_compiles_both_targets(name):
    composed = build_pipeline(name)
    assert composed.mode == "micro"
    v1 = V1ModelBackend().compile(composed)
    assert v1.source_text


@pytest.mark.parametrize("name", PROGRAMS)
def test_bench_compose(benchmark, name):
    """Benchmark: link + midend for one composition (Fig. 4b path)."""
    linked = link_composition(name)
    benchmark(lambda: compose(linked))
