"""Behavioral-model throughput: the cost of composition at *simulation*
time.

Not a paper table — the paper measures hardware resources, where µP4
costs PHV and stages but not packet rate.  In the behavioral model the
extra MATs do cost interpreter cycles, so this bench quantifies the
simulation-speed gap between composed and monolithic pipelines and
tracks regressions in the interpreter.
"""

import pytest

from tests.integration.helpers import eth_ipv4, eth_ipv6, make_instance


@pytest.fixture(scope="module")
def micro_router():
    return make_instance("P4", "micro")


@pytest.fixture(scope="module")
def mono_router():
    return make_instance("P4", "mono")


def test_bench_micro_ipv4(benchmark, micro_router):
    pkt = eth_ipv4()
    result = benchmark(lambda: micro_router.process(pkt.copy(), 1))
    assert result


def test_bench_mono_ipv4(benchmark, mono_router):
    pkt = eth_ipv4()
    result = benchmark(lambda: mono_router.process(pkt.copy(), 1))
    assert result


def test_bench_micro_ipv6(benchmark, micro_router):
    pkt = eth_ipv6()
    result = benchmark(lambda: micro_router.process(pkt.copy(), 1))
    assert result


def test_bench_micro_drop_path(benchmark, micro_router):
    pkt = eth_ipv4(dst="172.16.0.1")  # no route
    result = benchmark(lambda: micro_router.process(pkt.copy(), 1))
    assert result == []


def test_bench_mpls_pop(benchmark):
    from tests.integration.helpers import eth_mpls_ipv4

    instance = make_instance("P2", "micro")
    pkt = eth_mpls_ipv4(label=100)
    result = benchmark(lambda: instance.process(pkt.copy(), 1))
    assert result
