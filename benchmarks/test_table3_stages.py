"""Table 3 — MAU stages used on Tofino.

Regenerates the stage counts for monolithic and µP4 versions of P1–P7
and asserts the paper's claims:

* monolithic programs need few stages (paper: 3–4; our model: 2–4 — we
  do not model the checksum-recompute stage real programs carry),
* µP4 programs need more ("µP4 transforms (de)parsers into MATs"),
  landing in the paper's 5–9 band,
* every µP4 program still fits the 12-stage pipeline ("in each case, we
  were able to successfully fit µP4 programs on Tofino").
"""

import pytest

from benchmarks.conftest import PAPER_TABLE3
from repro.backend.base import extract_logical_tables
from repro.backend.tna import TnaBackend
from repro.backend.tna.descriptor import TofinoDescriptor
from repro.backend.tna.schedule import schedule_stages
from repro.lib.catalog import PROGRAMS, build_pipeline


def test_print_table3(tna_reports, capsys):
    with capsys.disabled():
        print("\n=== Table 3: MAU stages (monolithic vs µP4) ===")
        print(f"{'prog':5s} {'mono':>5s} {'µP4':>5s}   paper(mono, µP4)")
        for name in PROGRAMS:
            micro, mono = tna_reports[name]
            mono_text = f"{mono.num_stages:5d}" if mono else "   NA"
            print(f"{name:5s} {mono_text} {micro.num_stages:5d}   "
                  f"{PAPER_TABLE3[name]}")


class TestShape:
    @pytest.mark.parametrize("name", PROGRAMS)
    def test_micro_needs_more_stages(self, tna_reports, name):
        micro, mono = tna_reports[name]
        if mono is not None:
            assert micro.num_stages > mono.num_stages

    @pytest.mark.parametrize("name", PROGRAMS)
    def test_micro_in_paper_band(self, tna_reports, name):
        micro, _ = tna_reports[name]
        assert 5 <= micro.num_stages <= 9

    @pytest.mark.parametrize("name", PROGRAMS)
    def test_mono_small(self, tna_reports, name):
        _, mono = tna_reports[name]
        if mono is not None:
            assert mono.num_stages <= 4

    def test_stage_growth_from_mat_parsers(self, tna_reports):
        """The extra stages come from the synthesized (de)parser MATs:
        each module contributes a parser→control→deparser chain."""
        micro, mono = tna_reports["P4"]
        placements = micro.schedule.placement
        parser_stage = placements["main_parser_tbl"]
        deparser_stage = placements["main_deparser_tbl"]
        assert deparser_stage > parser_stage
        assert deparser_stage == micro.num_stages - 1


@pytest.mark.parametrize("name", PROGRAMS)
def test_bench_stage_scheduling(benchmark, name):
    """Benchmark: dependency analysis + greedy stage assignment."""
    composed = build_pipeline(name)
    tables = extract_logical_tables(composed)
    desc = TofinoDescriptor()
    benchmark(lambda: schedule_stages(tables, None, desc))
