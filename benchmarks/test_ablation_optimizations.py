"""Ablations for the §6.3 / §8.1 design choices.

The paper attributes µP4's feasibility on Tofino to two backend passes:

* **field alignment** — resizing byte-stack and header fields to 16-bit
  containers, which both reduces fragmentation and keeps assignments
  within the action-ALU source budget ("increasing the size of MPLS
  header fields also solved the issue"),
* **assignment splitting** — rewriting over-wide assignments into a
  series of MATs ("breaking down the complex assignment into multiple
  simpler ones which are executed in a series of MATs").

These benches toggle each pass and measure the consequences our model
predicts: without alignment the programs violate ALU limits (and
without splitting they are rejected outright — the paper's initial P2
failure); with splitting they compile but pay extra stages and PHV.
"""

import pytest

from repro.backend.tna import TnaBackend
from repro.backend.tna.descriptor import TofinoDescriptor
from repro.errors import ResourceError
from repro.lib.catalog import PROGRAMS, build_pipeline


@pytest.fixture(scope="module")
def variants():
    """name -> {(align, split): report-or-'FAILED'} for all programs."""
    out = {}
    for name in PROGRAMS:
        composed = build_pipeline(name)
        per = {}
        for align in (True, False):
            for split in (True, False):
                backend = TnaBackend(align_fields=align, split_assignments=split)
                try:
                    per[(align, split)] = backend.compile(composed)
                except ResourceError as exc:
                    per[(align, split)] = f"FAILED: {exc}"
        out[name] = per
    return out


def test_print_ablation(variants, capsys):
    with capsys.disabled():
        print("\n=== Ablation: §6.3 backend passes "
              "(align, split) -> stages / 16b / bits ===")
        for name, per in variants.items():
            cells = []
            for key in ((True, True), (True, False), (False, True), (False, False)):
                report = per[key]
                if isinstance(report, str):
                    cells.append("FAIL")
                else:
                    cells.append(
                        f"{report.num_stages}st/"
                        f"{report.container_counts[16]}x16b/"
                        f"{report.bits_allocated}b"
                    )
            print(f"  {name}: A+S={cells[0]:18s} A={cells[1]:18s} "
                  f"S={cells[2]:18s} none={cells[3]}")


class TestAlignmentPass:
    @pytest.mark.parametrize("name", [p for p in PROGRAMS if p != "P2"])
    def test_aligned_avoids_alu_violations(self, variants, name):
        """With alignment on, programs compile even without splitting."""
        report = variants[name][(True, False)]
        assert not isinstance(report, str), report

    def test_p2_reproduces_papers_initial_failure(self, variants):
        """§6.3: "compiling µP4C-generated P4 code for P2 using bf-p4c
        failed initially because an assignment operation in the generated
        code was trying to access more than the number of containers
        accessible to an action ALU" — the MPLS header's sub-byte fields
        (label/tc/bos) fragment across containers.  The series-of-MATs
        split is the fix the paper applied."""
        failure = variants["P2"][(True, False)]
        assert isinstance(failure, str) and "ALU" in failure
        fixed = variants["P2"][(True, True)]
        assert not isinstance(fixed, str)

    def test_unaligned_unsplit_fails_somewhere(self, variants):
        """The paper's initial P2 failure: without either fix, at least
        one program is rejected for ALU over-subscription."""
        failures = [
            name
            for name in PROGRAMS
            if isinstance(variants[name][(False, False)], str)
        ]
        assert failures, "expected ALU violations without both passes"

    @pytest.mark.parametrize("name", PROGRAMS)
    def test_split_rescues_unaligned(self, variants, name):
        """Splitting lets unaligned programs compile…"""
        report = variants[name][(False, True)]
        if isinstance(report, str):
            pytest.skip("split alone cannot fit this program")
        aligned = variants[name][(True, True)]
        # …at a cost: at least as many stages as the aligned build.
        assert report.num_stages >= aligned.num_stages


class TestDescriptorSweep:
    def test_stage_budget_sweep(self):
        """Where does the modular router stop fitting? (ablates the
        12-stage assumption)."""
        composed = build_pipeline("P4")
        fits = {}
        for stages in (4, 5, 8, 12):
            backend = TnaBackend(
                descriptor=TofinoDescriptor(num_stages=stages)
            )
            try:
                backend.compile(composed)
                fits[stages] = True
            except ResourceError:
                fits[stages] = False
        assert fits[12] and fits[8] and fits[5]
        assert not fits[4]  # needs 5 stages, as Table 3 reports

    def test_phv_pool_sweep(self):
        composed = build_pipeline("P7")  # widest program
        backend_full = TnaBackend()
        backend_full.compile(composed)  # fits
        tiny = TnaBackend(descriptor=TofinoDescriptor().scaled(0.2))
        with pytest.raises(ResourceError):
            tiny.compile(composed)


class TestMatElision:
    """§8.1: "instead of generating a single MAT for a (de)parser, µP4C
    can generate multiple MATs" / elide redundant ones — our pass
    removes trivial parser/deparser MATs of dispatch modules."""

    def test_print_elision_effect(self, capsys):
        from repro.backend.tna import TnaBackend

        backend = TnaBackend()
        with capsys.disabled():
            print("\n=== Ablation: §8.1 trivial-MAT elision ===")
            print(f"{'prog':5s} {'tables':>14s} {'stages':>12s}")
            for name in PROGRAMS:
                plain = build_pipeline(name)
                opt = build_pipeline(name, optimize=True)
                sp = backend.compile(plain).num_stages
                so = backend.compile(opt).num_stages
                print(f"{name:5s} {len(plain.tables):5d} -> {len(opt.tables):3d}"
                      f"   {sp:4d} -> {so:2d}")

    @pytest.mark.parametrize("name", PROGRAMS)
    def test_elision_reduces_tables(self, name):
        assert len(build_pipeline(name, optimize=True).tables) < len(
            build_pipeline(name).tables
        )

    def test_elision_closes_part_of_the_stage_gap(self):
        """P2 gains a stage back (paper: expects µP4 stages to approach
        monolithic with these optimizations)."""
        from repro.backend.tna import TnaBackend

        backend = TnaBackend()
        plain = backend.compile(build_pipeline("P2")).num_stages
        opt = backend.compile(build_pipeline("P2", optimize=True)).num_stages
        assert opt < plain


class TestGlobalParser:
    """§8.1: global-parser reconstruction — "we expect the number of
    hardware stages needed for µP4 programs to match those for
    monolithic programs"."""

    @pytest.fixture(scope="class")
    def gp_reports(self):
        from repro.lib.catalog import build_monolithic

        plain = TnaBackend()
        gp = TnaBackend(global_parser=True)
        out = {}
        for name in PROGRAMS:
            composed = build_pipeline(name)
            out[name] = (
                plain.compile(composed),
                gp.compile(composed),
                plain.compile(build_monolithic(name)),
            )
        return out

    def test_print_global_parser_effect(self, gp_reports, capsys):
        with capsys.disabled():
            print("\n=== Ablation: §8.1 global-parser reconstruction ===")
            print(f"{'prog':5s} {'µP4':>5s} {'+gp':>5s} {'mono':>5s}   absorbed/ineligible")
            for name, (plain, gp, mono) in gp_reports.items():
                plan = gp.global_parser_plan
                print(f"{name:5s} {plain.num_stages:5d} {gp.num_stages:5d} "
                      f"{mono.num_stages:5d}   "
                      f"{len(plan.absorbed)}/{len(plan.ineligible)}")

    @pytest.mark.parametrize("name", PROGRAMS)
    def test_global_parser_reduces_stages(self, gp_reports, name):
        plain, gp, _ = gp_reports[name]
        assert gp.num_stages < plain.num_stages

    @pytest.mark.parametrize("name", [p for p in PROGRAMS if p != "P2"])
    def test_stages_approach_monolithic(self, gp_reports, name):
        """Within 2 stages of monolithic (the deparser MATs remain,
        which the paper's scheme also keeps as synthesized MATs)."""
        _, gp, mono = gp_reports[name]
        assert gp.num_stages <= mono.num_stages + 2

    def test_runtime_dispatch_stays_ineligible(self, gp_reports):
        """The paper's caveat: "reconstructing a global parser may be
        difficult … when a µP4 program invokes different µP4 programs
        based on information provided by the control plane at runtime."
        P2's MPLS modules dispatch on an etherType the LER itself
        rewrites, so their parser MATs cannot be absorbed."""
        _, gp, _ = gp_reports["P2"]
        plan = gp.global_parser_plan
        assert any("ler" in n or "push" in n for n in plan.ineligible)


def test_bench_aligned_compile(benchmark):
    composed = build_pipeline("P2")
    backend = TnaBackend(align_fields=True)
    benchmark(lambda: backend.compile(composed))


def test_bench_unaligned_split_compile(benchmark):
    composed = build_pipeline("P2")
    backend = TnaBackend(align_fields=False, split_assignments=True)
    benchmark(lambda: backend.compile(composed))
