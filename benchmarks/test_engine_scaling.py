"""Sharded engine scaling: wall-clock and modeled rate vs worker count.

Measures the P4 composition on the exact-heavy routable workload (every
packet stays on the indexed table fast path) at 1, 2 and 4 workers
against the single-process inline ``soak_program`` baseline, and writes
``BENCH_engine_scaling.json`` at the repo root.

Three throughput figures are reported per worker count:

* ``wall_pkts_per_sec`` — total packets over wall-clock time for the
  default **dispatch** ingest: the parent generates the stream once and
  feeds a resident worker pool over shared-memory rings.  This is the
  headline number — the rate a user actually observes.
* ``replay_wall_pkts_per_sec`` — wall-clock rate of the deprecated
  **replay** ingest (every worker regenerates the full stream and
  filters to its shard; per-worker work is O(total stream)).  Kept as
  the regression baseline dispatch is measured against.
* ``aggregate_pkts_per_sec`` — total packets over the *busiest shard's
  busy time*, measured with replay workers run one at a time (the
  engine's ``sequential`` mode) so each shard's loop is timed without
  CPU contention.  This models the deployment the sharding is for —
  one core per replica.

On a host with >= ``workers`` free cores the wall-clock dispatch rate
at 2 workers must beat the single-process baseline.  On a 1-core
runner no engine configuration can beat the baseline (the work is CPU
bound and timeshared), so the check degrades to: dispatch must not be
slower than replay at equal workers — the regression this benchmark
exists to catch — with a small tolerance for scheduler noise.

The run auto-selects sequential isolation for the model whenever the
machine has fewer cores than the largest worker count (flagged
``"isolated": true`` in the JSON); round-robin sharding keeps the
shards balanced so the model is not skewed by an unlucky flow-hash
split.

Set ``BENCH_ENGINE_QUICK=1`` for a fast smoke run (CI).
"""

import json
import os
from pathlib import Path

import pytest

from repro.targets.engine import EngineConfig, run_sharded_program
from repro.targets.soak import SoakConfig, soak_program

QUICK = os.environ.get("BENCH_ENGINE_QUICK") == "1"
PACKETS = 2_000 if QUICK else 20_000
WORKER_COUNTS = (1, 2, 4)
#: Time shards in isolation when the host can't run them concurrently.
ISOLATED = (os.cpu_count() or 1) < max(WORKER_COUNTS)
#: Wall-clock trials per ingest mode at each worker count; best-of
#: damps scheduler noise (the workload is fixed, so slower runs are
#: interference, not signal).
TRIALS = 2
#: Noise floor for the 1-core dispatch-vs-replay comparison: the two
#: modes differ by ~1% of total CPU there, well inside run-to-run
#: scheduler variance on a timeshared runner.
WALL_TOLERANCE = 0.85
OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_engine_scaling.json"

RESULTS = {}


def config() -> SoakConfig:
    # Fault-free routable traffic: every packet exercises the exact/lpm
    # indexed lookup path end to end, nothing is randomly mutated, so
    # the measurement isolates pipeline execution cost.
    return SoakConfig(
        programs=["P4"],
        packets=PACKETS,
        seed=4242,
        fault_rate=0.0,
        traffic="routable",
    )


def _engine(workers: int, ingest: str, sequential: bool = False):
    return EngineConfig(
        workers=workers,
        shard_policy="round-robin",
        ingest=ingest,
        sequential=sequential,
    )


def _best_wall(workers: int, ingest: str, trials: int = TRIALS):
    """Best wall-clock rate over ``trials`` runs; returns (rate, block)."""
    best_rate, best_block = 0.0, None
    for _ in range(trials):
        block = run_sharded_program(
            config(), "P4", _engine(workers, ingest)
        )
        assert block["ledger_ok"] and not block["uncaught"]
        if block["pkts_per_sec"] >= best_rate:
            best_rate, best_block = block["pkts_per_sec"], block
    return best_rate, best_block


@pytest.fixture(scope="module", autouse=True)
def write_results():
    yield
    payload = {
        "bench": "engine_scaling",
        "quick": QUICK,
        "program": "P4",
        "traffic": "routable",
        "packets": PACKETS,
        "shard_policy": "round-robin",
        "cpu_count": os.cpu_count(),
        "isolated": ISOLATED,
        "wall_trials": TRIALS,
        "results": RESULTS,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def test_single_process_baseline():
    block = soak_program(config(), "P4")
    assert block["ledger_ok"] and not block["uncaught"]
    RESULTS["baseline"] = {
        "pkts_per_sec": block["pkts_per_sec"],
        "emits": block["emits"],
        "drops": block["drops"],
        "digest": block["digest"],
    }


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_engine_workers(workers):
    dispatch_wall, dispatch = _best_wall(workers, "dispatch")
    replay_wall, replay = _best_wall(workers, "replay")
    # The digest is a pure function of (seed, workers, shard_policy) —
    # never of the ingest mode.
    assert dispatch["digest"] == replay["digest"], (workers, "ingest drift")
    # Modeled aggregate from contention-free shard timings (sequential
    # replay) when the host can't actually run the workers in parallel.
    model = replay
    if ISOLATED:
        model = run_sharded_program(
            config(), "P4", _engine(workers, "replay", sequential=True)
        )
        assert model["ledger_ok"] and not model["uncaught"]
        assert model["digest"] == dispatch["digest"]
    RESULTS[f"workers_{workers}"] = {
        "wall_pkts_per_sec": dispatch_wall,
        "replay_wall_pkts_per_sec": replay_wall,
        "aggregate_pkts_per_sec": model["aggregate_pkts_per_sec"],
        "digest": dispatch["digest"],
        "shard_packets": [s["packets"] for s in model["shards"]],
        "shard_busy_s": [s["elapsed_s"] for s in model["shards"]],
    }


def test_scaling_reaches_2x_at_4_workers():
    baseline = RESULTS["baseline"]["pkts_per_sec"]
    w4 = RESULTS["workers_4"]["aggregate_pkts_per_sec"]
    RESULTS["speedup_4_workers"] = round(w4 / baseline, 2)
    # Round-robin over 4 equal shards: each replica processes 1/4 of
    # the stream, so the modeled aggregate should approach 4x and must
    # clear 2x even with per-worker setup overhead.
    assert w4 >= 2.0 * baseline, RESULTS


def test_dispatch_wall_clock_not_a_regression():
    """The bug this PR fixes: sharding used to make wall-clock *worse*
    than no engine at all, because every replay worker redid the whole
    stream.  With >= 2 cores, 2-worker dispatch must now beat the
    single-process baseline outright; on a 1-core runner (where no
    multiprocess configuration can beat a single process) dispatch must
    at least not lose to replay at equal workers."""
    baseline = RESULTS["baseline"]["pkts_per_sec"]
    dispatch = RESULTS["workers_2"]["wall_pkts_per_sec"]
    replay = RESULTS["workers_2"]["replay_wall_pkts_per_sec"]
    RESULTS["wall_check"] = {
        "cpu_count": os.cpu_count(),
        "dispatch_vs_replay": round(dispatch / replay, 3) if replay else None,
        "dispatch_vs_baseline": (
            round(dispatch / baseline, 3) if baseline else None
        ),
    }
    if (os.cpu_count() or 1) >= 2:
        assert dispatch >= baseline, RESULTS
    else:
        assert dispatch >= WALL_TOLERANCE * replay, RESULTS


def test_sharded_totals_match_baseline():
    """Scaling must not change behavior: the 4-worker merged totals
    equal the single-process run exactly."""
    merged = run_sharded_program(
        config(), "P4", _engine(4, "dispatch")
    )
    assert merged["emits"] == RESULTS["baseline"]["emits"]
    assert merged["drops"] == RESULTS["baseline"]["drops"]
    assert merged["digest"] == RESULTS["workers_4"]["digest"]
