"""Sharded engine scaling: aggregate packet rate vs worker count.

Measures the P4 composition on the exact-heavy routable workload (every
packet stays on the indexed table fast path) at 1, 2 and 4 workers
against the single-process inline ``soak_program`` baseline, and writes
``BENCH_engine_scaling.json`` at the repo root.

Two throughput figures are reported per worker count:

* ``wall_pkts_per_sec`` — total packets over wall-clock time.  On a
  machine with >= ``workers`` free cores this IS the aggregate rate; on
  a 1-core runner concurrent workers timeshare and it degenerates to
  ~1x whatever the sharding.
* ``aggregate_pkts_per_sec`` — total packets over the *busiest shard's
  busy time*, measured with workers run one at a time (the engine's
  ``sequential`` mode) so each shard's loop is timed without CPU
  contention.  This models the deployment the sharding is for — one
  core per replica — and is the figure the scaling assertion checks.

The run auto-selects sequential isolation whenever the machine has
fewer cores than the largest worker count (flagged ``"isolated": true``
in the JSON); round-robin sharding keeps the shards balanced so the
model is not skewed by an unlucky flow-hash split.

Set ``BENCH_ENGINE_QUICK=1`` for a fast smoke run (CI).
"""

import json
import os
from pathlib import Path

import pytest

from repro.targets.engine import EngineConfig, run_sharded_program
from repro.targets.soak import SoakConfig, soak_program

QUICK = os.environ.get("BENCH_ENGINE_QUICK") == "1"
PACKETS = 2_000 if QUICK else 20_000
WORKER_COUNTS = (1, 2, 4)
#: Time shards in isolation when the host can't run them concurrently.
ISOLATED = (os.cpu_count() or 1) < max(WORKER_COUNTS)
OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_engine_scaling.json"

RESULTS = {}


def config() -> SoakConfig:
    # Fault-free routable traffic: every packet exercises the exact/lpm
    # indexed lookup path end to end, nothing is randomly mutated, so
    # the measurement isolates pipeline execution cost.
    return SoakConfig(
        programs=["P4"],
        packets=PACKETS,
        seed=4242,
        fault_rate=0.0,
        traffic="routable",
    )


@pytest.fixture(scope="module", autouse=True)
def write_results():
    yield
    payload = {
        "bench": "engine_scaling",
        "quick": QUICK,
        "program": "P4",
        "traffic": "routable",
        "packets": PACKETS,
        "shard_policy": "round-robin",
        "cpu_count": os.cpu_count(),
        "isolated": ISOLATED,
        "results": RESULTS,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def test_single_process_baseline():
    block = soak_program(config(), "P4")
    assert block["ledger_ok"] and not block["uncaught"]
    RESULTS["baseline"] = {
        "pkts_per_sec": block["pkts_per_sec"],
        "emits": block["emits"],
        "drops": block["drops"],
        "digest": block["digest"],
    }


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_engine_workers(workers):
    engine = EngineConfig(
        workers=workers,
        shard_policy="round-robin",
        sequential=ISOLATED,
    )
    merged = run_sharded_program(config(), "P4", engine)
    assert merged["ledger_ok"] and not merged["uncaught"]
    assert merged["packets"] == PACKETS
    RESULTS[f"workers_{workers}"] = {
        "wall_pkts_per_sec": merged["pkts_per_sec"],
        "aggregate_pkts_per_sec": merged["aggregate_pkts_per_sec"],
        "digest": merged["digest"],
        "shard_packets": [s["packets"] for s in merged["shards"]],
        "shard_busy_s": [s["elapsed_s"] for s in merged["shards"]],
    }


def test_scaling_reaches_2x_at_4_workers():
    baseline = RESULTS["baseline"]["pkts_per_sec"]
    w4 = RESULTS["workers_4"]["aggregate_pkts_per_sec"]
    RESULTS["speedup_4_workers"] = round(w4 / baseline, 2)
    # Round-robin over 4 equal shards: each replica processes 1/4 of
    # the stream, so the modeled aggregate should approach 4x and must
    # clear 2x even with per-worker setup overhead.
    assert w4 >= 2.0 * baseline, RESULTS


def test_sharded_totals_match_baseline():
    """Scaling must not change behavior: the 4-worker merged totals
    equal the single-process run exactly."""
    merged = run_sharded_program(
        config(),
        "P4",
        EngineConfig(workers=4, shard_policy="round-robin", sequential=ISOLATED),
    )
    assert merged["emits"] == RESULTS["baseline"]["emits"]
    assert merged["drops"] == RESULTS["baseline"]["drops"]
    assert merged["digest"] == RESULTS["workers_4"]["digest"]
