"""Shared fixtures for the evaluation benchmarks.

Each benchmark module regenerates one table or figure of the paper's
evaluation (§7).  The suite prints the regenerated tables (run with
``pytest benchmarks/ --benchmark-only -s`` to see them) and asserts the
paper's *qualitative* claims — who wins, the direction and rough factor
of every overhead — since absolute numbers come from our modeled Tofino
rather than the authors' testbed.
"""

import pytest

from repro.backend.tna import TnaBackend
from repro.backend.tna.report import overhead_row
from repro.errors import ResourceError
from repro.lib.catalog import PROGRAMS, build_monolithic, build_pipeline

# Paper values for reference printing: Table 2 (%) and Table 3 (stages).
PAPER_TABLE2 = {
    "P1": (80.00, 312.50, -85.00, 32.34),
    "P2": (0.00, 315.79, -84.21, 0.00),
    "P3": (272.73, 564.71, -85.71, 54.58),
    "P4": (9.09, 331.25, -85.00, 1.64),
    "P5": (-20.00, 226.67, -63.64, 47.10),
    "P6": (18.18, 290.48, -80.00, 48.52),
    "P7": None,  # monolithic failed to compile on the paper's toolchain
}
PAPER_TABLE3 = {
    "P1": (3, 5),
    "P2": (4, 9),
    "P3": (3, 8),
    "P4": (3, 5),
    "P5": (3, 5),
    "P6": (3, 8),
    "P7": (None, 7),
}


@pytest.fixture(scope="session")
def tna_reports():
    """(micro, mono-or-None) TNA reports for every composition."""
    backend = TnaBackend()
    out = {}
    for name in PROGRAMS:
        micro = backend.compile(build_pipeline(name))
        try:
            mono = backend.compile(build_monolithic(name))
        except ResourceError:
            mono = None
        out[name] = (micro, mono)
    return out


@pytest.fixture(scope="session")
def overhead_rows(tna_reports):
    return {
        name: overhead_row(name, micro, mono)
        for name, (micro, mono) in tna_reports.items()
    }
