"""Table-lookup throughput: the indexed fast path vs the reference scan.

The µP4 homogenization passes (§5.3) turn parsers and deparsers into
large MATs, so behavioral-model packet rate is dominated by table lookup
cost.  RMT hardware resolves every lookup in O(1); this harness checks
that the behavioral target's per-match-kind indexes recover that cost
model, measuring lookups/sec on three synthetic workloads:

* **exact-heavy** — two exact keys, hash-map strategy (`exact-hash`);
* **lpm-heavy**   — one lpm key, per-prefix-length buckets (`lpm-buckets`);
* **ternary**     — ternary keys, precompiled scan (`compiled-scan`);

plus end-to-end packets/sec through the composed P4 pipeline.  Each
workload is first checked for exact result equivalence between the two
paths, then timed.  Results are written to ``BENCH_table_lookup.json``
at the repo root (uploaded as a CI artifact by the bench-smoke job).

Set ``BENCH_TABLE_QUICK=1`` for a fast smoke run (CI).
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.frontend import astnodes as ast
from repro.targets.tables import TableRuntime

QUICK = os.environ.get("BENCH_TABLE_QUICK") == "1"
N_ENTRIES = 96 if QUICK else 512
TIME_BUDGET = 0.05 if QUICK else 0.25  # seconds per timed side
OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_table_lookup.json"

RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def write_results():
    yield
    payload = {
        "bench": "table_lookup_throughput",
        "quick": QUICK,
        "entries_per_table": N_ENTRIES,
        "workloads": RESULTS,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def make_table(match_kinds, width=32):
    keys = []
    for i, kind in enumerate(match_kinds):
        expr = ast.PathExpr(name=f"k{i}")
        expr.type = ast.BitType(width=width)
        keys.append(ast.KeyElement(expr=expr, match_kind=kind))
    decl = ast.TableDecl(
        name="bench_tbl",
        keys=keys,
        actions=["hit", "miss"],
        default_action="miss",
    )
    return TableRuntime(decl)


def _rate(fn, keys):
    for key in keys[:8]:  # warmup; builds the index on the indexed side
        fn(key)
    count = 0
    start = time.perf_counter()
    while True:
        for key in keys:
            fn(key)
        count += len(keys)
        elapsed = time.perf_counter() - start
        if elapsed >= TIME_BUDGET:
            return count / elapsed


def _bench(name, table, keys):
    for key in keys:
        assert table.lookup_full(key) == table.lookup_scan_full(key), key
    indexed = _rate(table.lookup_full, keys)
    scan = _rate(table.lookup_scan_full, keys)
    RESULTS[name] = {
        "strategy": table.index_info()["strategy"],
        "entries": table.index_info()["entries"],
        "indexed_lookups_per_sec": round(indexed),
        "scan_lookups_per_sec": round(scan),
        "speedup": round(indexed / scan, 2),
    }
    return RESULTS[name]


def test_exact_heavy():
    table = make_table(["exact", "exact"])
    for i in range(N_ENTRIES):
        table.add_entry([i, (i * 7) & 0xFFFFFFFF], "hit", [i])
    keys = [(i, (i * 7) & 0xFFFFFFFF) for i in range(0, N_ENTRIES, 3)]
    keys += [(N_ENTRIES + i, 3) for i in range(8)]  # misses
    result = _bench("exact_heavy", table, keys)
    assert result["strategy"] == "exact-hash"
    assert result["speedup"] >= 3.0, result


def test_lpm_heavy():
    table = make_table(["lpm"])
    for i in range(N_ENTRIES):
        prefix_len = 8 + (i % 25)
        value = (i * 2654435761) & 0xFFFFFFFF
        mask = ((1 << prefix_len) - 1) << (32 - prefix_len)
        table.add_entry([(value & mask, prefix_len)], "hit", [i])
    keys = [((j * 2654435761) & 0xFFFFFFFF,) for j in range(0, N_ENTRIES, 3)]
    keys += [((j * 40503) & 0xFFFFFFFF,) for j in range(16)]
    result = _bench("lpm_heavy", table, keys)
    assert result["strategy"] == "lpm-buckets"
    assert result["speedup"] >= 1.5, result


def test_ternary():
    table = make_table(["ternary", "exact"])
    for i in range(N_ENTRIES):
        table.add_entry([((i << 16) & 0xFFFFFFFF, 0xFFFF0000), 1], "hit", [i])
    keys = [(((i << 16) | 0xBEEF) & 0xFFFFFFFF, 1) for i in range(0, N_ENTRIES, 3)]
    keys += [(((i << 16) | 1) & 0xFFFFFFFF, 2) for i in range(8)]  # misses
    result = _bench("ternary", table, keys)
    assert result["strategy"] == "compiled-scan"
    # The compiled scan stays O(n) but drops the per-spec kind branch;
    # just guard against regressing below the reference.
    assert result["speedup"] >= 0.8, result


def test_pipeline_end_to_end():
    """Packets/sec through the composed P4 pipeline, indexed vs scan."""
    from tests.integration.helpers import eth_ipv4, eth_ipv6, make_instance

    packets = [eth_ipv4(), eth_ipv4(dst="10.1.2.3"), eth_ipv6()]
    count = 200 if QUICK else 1000

    def pkt_rate(instance):
        for pkt in packets:  # warmup
            instance.process(pkt.copy(), 1)
        start = time.perf_counter()
        for i in range(count):
            instance.process(packets[i % len(packets)].copy(), 1)
        return count / (time.perf_counter() - start)

    indexed = pkt_rate(make_instance("P4", "micro", use_table_index=True))
    scan = pkt_rate(make_instance("P4", "micro", use_table_index=False))
    RESULTS["pipeline_P4_micro"] = {
        "packets": count,
        "indexed_pkts_per_sec": round(indexed),
        "scan_pkts_per_sec": round(scan),
        "speedup": round(indexed / scan, 2),
    }
    # The composed P4 tables are small, so the end-to-end gain is modest;
    # the indexed path must at least not be slower.
    assert indexed >= scan * 0.9, RESULTS["pipeline_P4_micro"]


def test_containment_overhead():
    """Fault-containment overhead on the fault-free hot path.

    The switch boundary (verdict construction, guard checks, ledger
    accounting) must cost <= ~5% versus calling the pipeline directly —
    containment is an int-compare-and-increment discipline, not a
    try/except per statement.  Measured end-to-end in pkts/s on the same
    corpus as ``pipeline_P4_micro``.
    """
    from repro.targets.switch import Switch, SwitchConfig
    from tests.integration.helpers import eth_ipv4, eth_ipv6, make_instance

    packets = [eth_ipv4(), eth_ipv4(dst="10.1.2.3"), eth_ipv6()]
    count = 200 if QUICK else 1000

    def rate(fn):
        for pkt in packets:  # warmup
            fn(pkt.copy())
        best = 0.0
        for _ in range(2 if QUICK else 4):
            start = time.perf_counter()
            for i in range(count):
                fn(packets[i % len(packets)].copy())
            best = max(best, count / (time.perf_counter() - start))
        return best

    raw_instance = make_instance("P4", "micro")
    switch = Switch(make_instance("P4", "micro"), SwitchConfig(num_ports=16))

    raw = rate(lambda pkt: raw_instance.process(pkt, 1))
    contained = rate(lambda pkt: switch.process(pkt, 1))
    assert switch.stats["units"] == switch.stats["out"] + switch.stats["dropped"]

    RESULTS["containment_overhead_P4_micro"] = {
        "packets": count,
        "raw_pipeline_pkts_per_sec": round(raw),
        "contained_switch_pkts_per_sec": round(contained),
        "overhead_pct": round((1 - contained / raw) * 100, 1),
    }
    # Allow scheduler noise beyond the 5% target on shared CI runners.
    assert contained >= raw * 0.90, RESULTS["containment_overhead_P4_micro"]
