"""Table 2 — PHV resource overhead of µP4 vs monolithic on Tofino.

Regenerates the paper's headline resource table:

    % overhead = (usage(µP4) − usage(monolithic)) / usage(monolithic) × 100

per container size (8b/16b/32b) and total allocated bits, and asserts
the qualitative shape the paper reports:

* µP4 programs heavily inflate 16-bit container usage (the byte stack
  plus the alignment pass — "almost 3× of their monolithic
  counterparts"),
* µP4 32-bit usage collapses ("negligible … as compared to the
  monolithic ones"),
* total PHV bits grow but stay within a small factor,
* every µP4 program still fits the chip ("in each case, the resources
  required to run µP4 programs were within Tofino's limits").

Known deviation (documented in EXPERIMENTS.md): the paper's monolithic
P7 failed to compile under bf-p4c's proprietary heuristics; our
deterministic allocator compiles it, so the P7 row has a baseline here.
"""

import pytest

from benchmarks.conftest import PAPER_TABLE2
from repro.backend.tna import TnaBackend
from repro.backend.tna.phv import allocate_phv
from repro.lib.catalog import PROGRAMS, build_monolithic, build_pipeline


def test_print_table2(overhead_rows, capsys):
    with capsys.disabled():
        print("\n=== Table 2: % PHV overhead of µP4 vs monolithic ===")
        print(f"{'prog':4s} {'8b':>8s} {'16b':>8s} {'32b':>8s} {'bits':>8s}"
              f"   stages        paper(8b,16b,32b,bits)")
        for name in PROGRAMS:
            paper = PAPER_TABLE2[name]
            paper_text = (
                f"{paper}" if paper else "NA: monolithic failed (paper)"
            )
            print(f"{overhead_rows[name].render()}   {paper_text}")


class TestShape:
    @pytest.mark.parametrize("name", [p for p in PROGRAMS])
    def test_16b_heavily_inflated(self, overhead_rows, name):
        """µP4 uses far more 16b containers (paper: ~3×, i.e. >200%)."""
        row = overhead_rows[name]
        assert row.pct_16b is not None and row.pct_16b > 200.0

    @pytest.mark.parametrize("name", [p for p in PROGRAMS])
    def test_32b_collapsed(self, overhead_rows, name):
        """µP4 32b usage drops well below monolithic (paper: −63..−86%;
        our model: −40..−81%, the weakest case being P6 whose three
        IPv4 header copies keep exactly-32-bit address fields)."""
        row = overhead_rows[name]
        assert row.pct_32b is not None and row.pct_32b < -30.0

    @pytest.mark.parametrize("name", [p for p in PROGRAMS])
    def test_bits_overhead_bounded(self, overhead_rows, name):
        """More bits overall, but within a small constant factor."""
        row = overhead_rows[name]
        assert 0.0 < row.pct_bits < 200.0  # paper: 0–55%; ours ≤ ~130%

    @pytest.mark.parametrize("name", PROGRAMS)
    def test_micro_fits_the_chip(self, tna_reports, name):
        """Every µP4 program compiles within the Tofino envelope."""
        micro, _ = tna_reports[name]
        assert micro.num_stages <= 12


class TestMechanism:
    def test_byte_stack_drives_16b_usage(self):
        """The 16b inflation comes from the byte stack: allocation
        without it (monolithic) shows no such skew."""
        micro = allocate_phv(build_pipeline("P4"), align=True)
        mono = allocate_phv(build_monolithic("P4"), align=True)
        micro_counts, mono_counts = micro.counts(), mono.counts()
        assert micro_counts[16] >= 3 * max(mono_counts[16], 1)
        assert micro_counts[32] < mono_counts[32]


@pytest.mark.parametrize("name", PROGRAMS)
def test_bench_phv_allocation(benchmark, name):
    """Benchmark: PHV allocation for the µP4 version of each program."""
    composed = build_pipeline(name)
    benchmark(lambda: allocate_phv(composed, align=True))


def test_bench_full_tna_compile(benchmark):
    """Benchmark: complete TNA backend on the modular router."""
    composed = build_pipeline("P4")
    backend = TnaBackend()
    benchmark(lambda: backend.compile(composed))
