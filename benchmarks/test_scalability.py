"""Scalability of the static analysis (paper §5.2).

The paper argues µP4C avoids symbolic-execution blowup: parse-graph
analysis "can be reduced to finding the longest path in a directed
acyclic graph, which can be done in linear time", and control-flow
analysis depends only on program *structure* (conditionals, actions per
MAT), not table contents.

These benches generate synthetic programs of growing size — parser
chains, table pipelines, composition depth — and measure frontend +
analysis time, asserting it stays far from exponential.
"""

import time

import pytest

from repro.frontend.typecheck import check_program
from repro.ir.parse_graph import build_parse_graph
from repro.midend.analysis import analyze
from repro.midend.linker import link_modules


def chain_parser_program(num_states: int) -> str:
    """A linear parser chain: h0 -> h1 -> ... -> accept."""
    headers = "".join(
        f"header h{i}_t {{ bit<8> kind; bit<8> data; }}\n"
        for i in range(num_states)
    )
    fields = "".join(f"  h{i}_t h{i};\n" for i in range(num_states))
    states = []
    for i in range(num_states):
        nxt = f"s{i + 1}" if i + 1 < num_states else "accept"
        states.append(
            f"state s{i} {{ ex.extract(p, h.h{i}); "
            f"transition select(h.h{i}.kind) {{ 0x01 : {nxt}; "
            f"default : accept; }} }}"
        )
    states_text = "\n    ".join(states).replace("state s0", "state start", 1)
    return f"""
{headers}
struct chain_t {{
{fields}}}
program Chain : implements Unicast<> {{
  parser P(extractor ex, pkt p, out chain_t h) {{
    {states_text}
  }}
  control C(pkt p, inout chain_t h, im_t im) {{ apply {{ }} }}
  control D(emitter em, pkt p, in chain_t h) {{ apply {{ }} }}
}}
Chain(P, C, D) main;
"""


def table_pipeline_program(num_tables: int) -> str:
    """A control with N sequential tables over one header."""
    actions = "\n    ".join(
        f"action set{i}(bit<8> v) {{ h.h0.f{i % 4} = v; }}"
        for i in range(num_tables)
    )
    tables = "\n    ".join(
        f"table t{i} {{ key = {{ h.h0.f{(i + 1) % 4} : exact; }} "
        f"actions = {{ set{i}; }} }}"
        for i in range(num_tables)
    )
    applies = " ".join(f"t{i}.apply();" for i in range(num_tables))
    return f"""
header h0_t {{ bit<8> f0; bit<8> f1; bit<8> f2; bit<8> f3; }}
struct tp_t {{ h0_t h0; }}
program Tables : implements Unicast<> {{
  parser P(extractor ex, pkt p, out tp_t h) {{
    state start {{ ex.extract(p, h.h0); transition accept; }}
  }}
  control C(pkt p, inout tp_t h, im_t im) {{
    {actions}
    {tables}
    apply {{ {applies} }}
  }}
  control D(emitter em, pkt p, in tp_t h) {{ apply {{ em.emit(p, h.h0); }} }}
}}
Tables(P, C, D) main;
"""


class TestParseGraphScaling:
    @pytest.mark.parametrize("size", [4, 16, 64])
    def test_linear_chain_analyzes(self, size):
        module = check_program(chain_parser_program(size), f"chain{size}")
        graph = build_parse_graph(module.programs["Chain"].parser)
        # Each state adds one early-accept path; the last state's two
        # cases both accept, so the chain has size+1 accept paths.
        assert len(graph.paths()) == size + 1
        assert graph.extract_length == 2 * size

    def test_growth_is_polynomial(self):
        """Doubling the chain must not square the runtime."""
        timings = {}
        for size in (16, 32, 64):
            start = time.perf_counter()
            module = check_program(chain_parser_program(size), f"c{size}")
            build_parse_graph(module.programs["Chain"].parser).paths()
            timings[size] = time.perf_counter() - start
        # Allow generous constant factors; fail only on blowup.
        assert timings[64] < 40 * max(timings[16], 1e-4)


class TestControlScaling:
    @pytest.mark.parametrize("size", [8, 32, 64])
    def test_table_pipeline_analyzes(self, size):
        module = check_program(table_pipeline_program(size), f"t{size}")
        linked = link_modules(module, [])
        region = analyze(linked)
        assert region.extract_length == 4


@pytest.mark.parametrize("size", [16, 64])
def test_bench_frontend_chain(benchmark, size):
    source = chain_parser_program(size)
    benchmark(lambda: check_program(source, f"chain{size}"))


@pytest.mark.parametrize("size", [64])
def test_bench_parse_graph(benchmark, size):
    module = check_program(chain_parser_program(size), f"chain{size}")
    parser = module.programs["Chain"].parser
    benchmark(lambda: build_parse_graph(parser).paths())


@pytest.mark.parametrize("size", [32])
def test_bench_analysis_tables(benchmark, size):
    module = check_program(table_pipeline_program(size), f"t{size}")
    linked = link_modules(module, [])
    benchmark(lambda: analyze(linked))
