#!/usr/bin/env python3
"""Regenerate the paper's evaluation tables on the modeled Tofino.

Prints Table 1 (composition matrix), Table 2 (PHV overhead of µP4 vs
monolithic) and Table 3 (MAU stages), using the library compositions
P1–P7 and the TNA backend's resource model.

Run:  python examples/resource_report.py
"""

from repro.backend.tna import TnaBackend
from repro.backend.tna.report import overhead_row
from repro.errors import ResourceError
from repro.lib.catalog import (
    PROGRAMS,
    build_monolithic,
    build_pipeline,
    composition_matrix,
)


def main() -> None:
    print("Table 1 — composing µP4 modules into dataplane programs")
    print(composition_matrix())
    print()

    backend = TnaBackend()
    rows = []
    for name in PROGRAMS:
        micro = backend.compile(build_pipeline(name))
        try:
            mono = backend.compile(build_monolithic(name))
        except ResourceError:
            mono = None
        rows.append((name, overhead_row(name, micro, mono), micro, mono))

    print("Table 2 — % PHV overhead of µP4 vs monolithic "
          "(usage(µP4)-usage(mono))/usage(mono) × 100%")
    print(f"{'prog':4s} {'8b':>8s} {'16b':>8s} {'32b':>8s} {'bits':>8s}"
          f"   stages (Table 3)")
    for name, row, micro, mono in rows:
        print(row.render())
    print()

    print("Raw container counts:")
    for name, row, micro, mono in rows:
        mono_text = mono.summary() if mono else "NA: failed to compile"
        print(f"  {name} µP4 : {micro.summary()}")
        print(f"  {name} mono: {mono_text}")


if __name__ == "__main__":
    main()
