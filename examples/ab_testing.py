#!/usr/bin/env python3
"""A-B testing composition operator (paper §7.2, after P4Visor).

A one-byte test header carries a flag; the main program parses it and
dispatches the rest of the packet to either the production or the test
routing module — both implementing the same interface.  The deparser
puts the test header back.

Run:  python examples/ab_testing.py
"""

from repro import build_dataplane, compile_module
from repro.net.build import PacketBuilder
from repro.net.ipv4 import IPV4, ip4
from repro.net.packet import Packet

ROUTER_TEMPLATE = """
header ipv4_h {
  bit<4> version; bit<4> ihl; bit<8> diffserv; bit<16> totalLen;
  bit<16> identification; bit<3> flags; bit<13> fragOffset;
  bit<8> ttl; bit<8> protocol; bit<16> hdrChecksum;
  bit<32> srcAddr; bit<32> dstAddr;
}
struct v4_t { ipv4_h ipv4; }

program %(name)s : implements Unicast<> {
  parser P(extractor ex, pkt p, out v4_t h) {
    state start { ex.extract(p, h.ipv4); transition accept; }
  }
  control C(pkt p, inout v4_t h, im_t im) {
    action route(bit<8> port) {
      h.ipv4.ttl = h.ipv4.ttl - 1;
      im.set_out_port(port);
    }
    action no_route() { im.drop(); }
    table %(table)s {
      key = { h.ipv4.dstAddr : lpm; }
      actions = { route; no_route; }
      default_action = no_route();
    }
    apply { %(table)s.apply(); }
  }
  control D(emitter em, pkt p, in v4_t h) {
    apply { em.emit(p, h.ipv4); }
  }
}
"""

AB_MAIN = """
header test_h { bit<8> flag; }
struct ab_t { test_h testHdr; }

ProdRouter(pkt p, im_t im);
TestRouter(pkt p, im_t im);

program AbTest : implements Unicast<> {
  parser P(extractor ex, pkt p, out ab_t h) {
    state start { ex.extract(p, h.testHdr); transition accept; }
  }
  control C(pkt p, inout ab_t h, im_t im) {
    ProdRouter() prod_i;
    TestRouter() test_i;
    apply {
      if (h.testHdr.flag == 1) {
        test_i.apply(p, im);
      } else {
        prod_i.apply(p, im);
      }
    }
  }
  control D(emitter em, pkt p, in ab_t h) {
    apply { em.emit(p, h.testHdr); }
  }
}
AbTest(P, C, D) main;
"""


def main() -> None:
    prod = compile_module(
        ROUTER_TEMPLATE % {"name": "ProdRouter", "table": "prod_lpm"}, "prod.up4"
    )
    test = compile_module(
        ROUTER_TEMPLATE % {"name": "TestRouter", "table": "test_lpm"}, "test.up4"
    )
    main_mod = compile_module(AB_MAIN, "abtest.up4")
    dp = build_dataplane(main_mod, [prod, test])

    # Same prefix, different decisions: prod -> port 1, test -> port 9.
    dp.api.add_entry("prod_lpm", [(ip4("10.0.0.0"), 8)], "route", [1])
    dp.api.add_entry("test_lpm", [(ip4("10.0.0.0"), 8)], "route", [9])

    ip = IPV4.encode(
        dict(version=4, ihl=5, diffserv=0, totalLen=20, identification=0,
             flags=0, fragOffset=0, ttl=64, protocol=6, hdrChecksum=0,
             srcAddr=ip4("1.1.1.1"), dstAddr=ip4("10.0.0.7"))
    )
    for flag in (0, 1):
        pkt = Packet(bytes([flag]) + ip + b"payload")
        outs = dp.inject(pkt, in_port=0)
        which = "test" if flag else "prod"
        print(f"testHdr.flag={flag}: handled by {which} pipeline "
              f"-> port {outs[0].port}")
        # The deparser restored the test header in front.
        assert outs[0].packet.read(0, 1) == bytes([flag])
    print("\nA-B testing operator reproduced: one flag byte steers each "
          "packet\nthrough production or test code, modules unchanged.")


if __name__ == "__main__":
    main()
