#!/usr/bin/env python3
"""The paper's modular router (P4 in Table 1) from the module library.

Composes Eth + L3 + IPv4 + IPv6 (Fig. 8), routes a v4 and a v6 packet,
and shows the same modules compiled for both targets (portability, §7).

Run:  python examples/modular_router.py
"""

from repro.backend.tna import TnaBackend
from repro.lib.catalog import build_pipeline, composition_matrix
from repro.net.build import PacketBuilder, dissect
from repro.net.ethernet import mac
from repro.net.ipv4 import ip4
from repro.net.ipv6 import ip6
from repro.targets.pipeline import PipelineInstance
from repro.targets.runtime_api import RuntimeAPI


def main() -> None:
    print("Table 1 — module composition matrix:")
    print(composition_matrix())
    print()

    composed = build_pipeline("P4")
    print(f"P4 (modular router) composed: El={composed.region.extract_length}B "
          f"Bs={composed.byte_stack_size}B, {len(composed.tables)} MATs")

    instance = PipelineInstance(composed)
    api = RuntimeAPI(instance)
    api.add_entry("ipv4_lpm_tbl", [(ip4("10.0.0.0"), 8)], "process", [7])
    api.add_entry("ipv6_lpm_tbl", [(ip6("2001:db8::"), 32)], "process", [9])
    for nh, port in ((7, 2), (9, 4)):
        api.add_entry(
            "forward_tbl", [nh], "forward",
            [mac("02:00:00:00:00:aa"), mac("02:00:00:00:00:bb"), port],
        )

    v4 = (
        PacketBuilder()
        .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x0800)
        .ipv4("192.168.0.1", "10.5.5.5", 17)
        .udp(1000, 53)
        .build()
    )
    v6 = (
        PacketBuilder()
        .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x86DD)
        .ipv6("fd00::1", "2001:db8::42", 59)
        .build()
    )
    for name, pkt in (("IPv4", v4), ("IPv6", v6)):
        outs = instance.process(pkt, in_port=1)
        layers = [layer for layer, _ in dissect(outs[0].packet)]
        print(f"  {name} packet -> port {outs[0].port}, layers: {layers}")

    print("\nPortability: same modules, two targets")
    from repro.backend.v1model import V1ModelBackend

    v1 = V1ModelBackend().compile(build_pipeline("P4"))
    print(f"  v1model: {len(v1.ingress_table_names)} ingress tables, "
          f"{len(v1.source_text.splitlines())} lines of generated code")
    tna = TnaBackend().compile(build_pipeline("P4"))
    print(f"  tna    : {tna.summary()}")


if __name__ == "__main__":
    main()
