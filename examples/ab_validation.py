#!/usr/bin/env python3
"""A-B validation with an Orchestration pipeline (paper §5.4, Fig. 13).

The appendix's `validate` program: copies of each packet run through a
production module and a candidate (test) module; if their decisions
disagree, the test copy is mirrored to an analysis port.  Unlike the
A-B *testing* example (which splits traffic), this processes *every*
packet both ways — the multi-packet processing that µP4C's PDG slicing
(§5.4) plans for hardware, executed here in the behavioral target.

Run:  python examples/ab_validation.py
"""

from repro.frontend.typecheck import check_program
from repro.net.build import PacketBuilder
from repro.net.ipv4 import ip4
from repro.targets.orchestration import OrchestrationRunner

ROUTER = """
header ipv4_h {
  bit<4> version; bit<4> ihl; bit<8> diffserv; bit<16> totalLen;
  bit<16> identification; bit<3> flags; bit<13> fragOffset;
  bit<8> ttl; bit<8> protocol; bit<16> hdrChecksum;
  bit<32> srcAddr; bit<32> dstAddr;
}
struct rt_t { ipv4_h ipv4; }

program %(name)s : implements Unicast<> {
  parser P(extractor ex, pkt p, out rt_t h) {
    state start { ex.extract(p, h.ipv4); transition accept; }
  }
  control C(pkt p, inout rt_t h, im_t im, out bit<16> decision) {
    action route(bit<16> d) { decision = d; }
    action none() { decision = 0; }
    table %(table)s {
      key = { h.ipv4.dstAddr : lpm; }
      actions = { route; none; }
      default_action = none();
    }
    apply { decision = 0; %(table)s.apply(); }
  }
  control D(emitter em, pkt p, in rt_t h) { apply { em.emit(p, h.ipv4); } }
}
"""

VALIDATE = """
prod(pkt p, im_t im, out bit<16> decision);
cand(pkt p, im_t im, out bit<16> decision);

program Validate : implements Orchestration<> {
  control C(pkt p, im_t i, out_buf ob) {
    pkt pt;
    im_t it;
    bit<16> dp;
    bit<16> dt;
    prod() prod_i;
    cand() cand_i;
    apply {
      pt.copy_from(p);
      it.copy_from(i);
      prod_i.apply(p, i, dp);
      cand_i.apply(pt, it, dt);
      i.set_out_port((bit<8>) dp);
      ob.enqueue(p, i);
      if (dp != dt) {
        it.set_out_port(99);
        ob.enqueue(pt, it);
      }
    }
  }
}
"""


def main() -> None:
    prod = check_program(ROUTER % {"name": "prod", "table": "prod_lpm"}, "prod.up4")
    cand = check_program(ROUTER % {"name": "cand", "table": "cand_lpm"}, "cand.up4")
    runner = OrchestrationRunner(check_program(VALIDATE, "validate.up4"), [prod, cand])

    # The candidate FIB has an extra, more-specific route — a change
    # being validated before rollout.
    runner.api("prod_i").add_entry("prod_lpm", [(ip4("10.0.0.0"), 8)], "route", [4])
    runner.api("cand_i").add_entry("cand_lpm", [(ip4("10.0.0.0"), 8)], "route", [4])
    runner.api("cand_i").add_entry("cand_lpm", [(ip4("10.9.0.0"), 16)], "route", [5])

    print("PDG slicing plan (§5.4):")
    plan = runner.plan
    print(f"  packet instances : {sorted(plan.slices)}")
    print(f"  thread schedule  : {plan.schedule()}")
    print()

    for dst in ("10.1.1.1", "10.9.1.1", "172.16.0.1"):
        pkt = PacketBuilder().ipv4("1.1.1.1", dst, 6).payload(b"xy").build()
        result = runner.process(pkt, in_port=1)
        ports = [o.port for o in result.outputs]
        verdict = "MISMATCH -> mirrored" if len(ports) == 2 else "agree"
        print(f"  dst {dst:12s}: outputs on ports {ports}  ({verdict})")


if __name__ == "__main__":
    main()
