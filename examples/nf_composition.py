#!/usr/bin/env python3
"""Composing network functions (paper §7.2).

Two of the CoVisor-style composition operators realized with µP4:

* **sequential** (firewall -> routing): composition P1 runs the ACL
  module before the routing modules; a denied packet never reaches
  them.
* **override** (MPLS label decision overrides plain routing):
  composition P2 lets the MPLS push module re-steer a routed packet
  into a label-switched path.

Run:  python examples/nf_composition.py
"""

from repro.lib.catalog import build_pipeline
from repro.net.build import PacketBuilder, dissect
from repro.net.ethernet import mac
from repro.net.ipv4 import ip4
from repro.targets.pipeline import PipelineInstance
from repro.targets.runtime_api import RuntimeAPI


def tcp_packet(dport):
    return (
        PacketBuilder()
        .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x0800)
        .ipv4("192.168.0.1", "10.0.0.5", 6, payload_len=20)
        .tcp(1234, dport)
        .build()
    )


def sequential_firewall() -> None:
    print("— sequential composition: firewall -> routing (P1) —")
    instance = PipelineInstance(build_pipeline("P1"))
    api = RuntimeAPI(instance)
    api.add_entry("ipv4_lpm_tbl", [(ip4("10.0.0.0"), 8)], "process", [7])
    api.add_entry(
        "forward_tbl", [7], "forward",
        [mac("02:00:00:00:00:aa"), mac("02:00:00:00:00:bb"), 2],
    )
    # Deny TCP/22 regardless of addresses.
    api.add_entry("acl_tbl", [None, None, 6, 22], "deny", [])

    for dport in (80, 22):
        outs = instance.process(tcp_packet(dport), 1)
        verdict = f"forwarded on port {outs[0].port}" if outs else "DENIED"
        print(f"  TCP dport {dport:3d}: {verdict}")
    print()


def mpls_override() -> None:
    print("— override composition: MPLS LER overrides routing (P2) —")
    instance = PipelineInstance(build_pipeline("P2"))
    api = RuntimeAPI(instance)
    api.add_entry("ipv4_lpm_tbl", [(ip4("10.0.0.0"), 8)], "process", [7])
    api.add_entry("ipv4_lpm_tbl", [(ip4("10.7.0.0"), 16)], "process", [8])
    for nh, port in ((7, 2), (8, 3)):
        api.add_entry(
            "forward_tbl", [nh], "forward",
            [mac("02:00:00:00:00:aa"), mac("02:00:00:00:00:bb"), port],
        )
    # Traffic routed via next hop 8 gets pushed into an MPLS tunnel.
    api.add_entry("mpls_push_tbl", [8], "push", [777])

    plain = (
        PacketBuilder()
        .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x0800)
        .ipv4("192.168.0.1", "10.0.0.5", 6)
        .build()
    )
    tunneled = (
        PacketBuilder()
        .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x0800)
        .ipv4("192.168.0.1", "10.7.0.5", 6)
        .build()
    )
    for name, pkt in (("10.0.0.5 (plain)", plain), ("10.7.0.5 (tunnel)", tunneled)):
        outs = instance.process(pkt, 1)
        layers = [layer for layer, _ in dissect(outs[0].packet)]
        label = ""
        if "mpls" in layers:
            fields = dict(dissect(outs[0].packet))["mpls"]
            label = f", label {fields['label']}"
        print(f"  dst {name}: port {outs[0].port}, layers {layers}{label}")
    print()


if __name__ == "__main__":
    sequential_firewall()
    mpls_override()
