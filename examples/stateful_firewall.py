#!/usr/bin/env python3
"""Stateful processing with the register extension (paper §8.2).

The paper lists stateful abstractions as future work: "µP4 can be
extended to support static variables which µP4C can map to
architecture-specific constructs such as registers."  This reproduction
implements that extension; here it powers a reflexive firewall module:

* packets from the inside (port 1) punch state for their destination,
* packets from the outside (port 2) pass only if the inside previously
  talked to their source.

Run:  python examples/stateful_firewall.py
"""

from repro import build_dataplane, compile_module
from repro.net.build import PacketBuilder

FIREWALL = """
header ipv4_h {
  bit<4> version; bit<4> ihl; bit<8> diffserv; bit<16> totalLen;
  bit<16> identification; bit<3> flags; bit<13> fragOffset;
  bit<8> ttl; bit<8> protocol; bit<16> hdrChecksum;
  bit<32> srcAddr; bit<32> dstAddr;
}
struct fw_t { ipv4_h ipv4; }

program ReflexiveFw : implements Unicast<> {
  parser P(extractor ex, pkt p, out fw_t h) {
    state start { ex.extract(p, h.ipv4); transition accept; }
  }
  control C(pkt p, inout fw_t h, im_t im) {
    register() sessions;
    apply {
      bit<8> seen;
      if (im.get_in_port() == 1) {
        // Inside -> outside: allow and record the peer.
        sessions.write((bit<32>) h.ipv4.dstAddr[15:0], 8w1);
        im.set_out_port(2);
      } else {
        // Outside -> inside: allow only established peers.
        sessions.read(seen, (bit<32>) h.ipv4.srcAddr[15:0]);
        if (seen == 1) {
          im.set_out_port(1);
        } else {
          im.drop();
        }
      }
    }
  }
  control D(emitter em, pkt p, in fw_t h) {
    apply { em.emit(p, h.ipv4); }
  }
}
ReflexiveFw(P, C, D) main;
"""


def ip_packet(src, dst):
    return (
        PacketBuilder()
        .ipv4(src, dst, 6)
        .payload(b"data")
        .build()
    )


def main() -> None:
    dp = build_dataplane(compile_module(FIREWALL, "fw.up4"))

    print("outside host 8.8.8.8 knocks first:")
    outs = dp.inject(ip_packet("8.8.8.8", "192.168.0.5"), in_port=2)
    print("  ->", "forwarded" if outs else "DROPPED (no session)")

    print("inside host talks to 8.8.8.8:")
    outs = dp.inject(ip_packet("192.168.0.5", "8.8.8.8"), in_port=1)
    print("  ->", f"forwarded on port {outs[0].port}" if outs else "dropped")

    print("outside host 8.8.8.8 replies:")
    outs = dp.inject(ip_packet("8.8.8.8", "192.168.0.5"), in_port=2)
    print("  ->", f"forwarded on port {outs[0].port} (session established)"
          if outs else "dropped")

    print("unrelated outside host 9.9.9.9 tries:")
    outs = dp.inject(ip_packet("9.9.9.9", "192.168.0.5"), in_port=2)
    print("  ->", "forwarded" if outs else "DROPPED (no session)")


if __name__ == "__main__":
    main()
