#!/usr/bin/env python3
"""Incremental development (paper §7.1): adding SRv6 to the router.

The modular router (P4) knows nothing about segment routing.  Extending
it is a *link-time* change: swap the L3 dispatch variant for one that
runs the SRv6 module before IPv6 — no other module is touched.  This
script builds both versions and shows an SRv6 packet being handled only
by the extended one.

Run:  python examples/incremental_srv6.py
"""

from repro.lib.catalog import COMPOSITIONS, build_pipeline
from repro.net.build import PacketBuilder, dissect, layer_fields
from repro.net.ethernet import mac
from repro.net.ipv6 import ip6
from repro.net.srv6 import srh_bytes
from repro.targets.pipeline import PipelineInstance
from repro.targets.runtime_api import RuntimeAPI


def srv6_packet():
    """IPv6 packet at segment endpoint 2001:db8::1, one segment left."""
    srh = srh_bytes(["2001:db8::99", "2001:db8::1"], 59, segments_left=1)
    return (
        PacketBuilder()
        .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x86DD)
        .ipv6("fd00::1", "2001:db8::1", 43, payload_len=len(srh))
        .payload(srh)
        .build()
    )


def program_common(api: RuntimeAPI) -> None:
    api.add_entry("ipv6_lpm_tbl", [(ip6("2001:db8::99"), 128)], "process", [9])
    api.add_entry(
        "forward_tbl", [9], "forward",
        [mac("02:00:00:00:00:aa"), mac("02:00:00:00:00:bb"), 6],
    )


def main() -> None:
    print("modules of P4:", COMPOSITIONS["P4"])
    print("modules of P7:", COMPOSITIONS["P7"], " (— the only change)")
    print()

    # Plain router: the SRv6 destination has no route -> dropped.
    plain = PipelineInstance(build_pipeline("P4"))
    plain_api = RuntimeAPI(plain)
    program_common(plain_api)
    outs = plain.process(srv6_packet(), 1)
    print(f"plain router (P4): SRv6 packet -> "
          f"{'forwarded' if outs else 'dropped (no route to endpoint)'}")

    # Extended router: SRv6 module rewrites dstAddr from the segment
    # list, then IPv6 routes toward the next segment.
    extended = PipelineInstance(build_pipeline("P7"))
    ext_api = RuntimeAPI(extended)
    program_common(ext_api)
    ext_api.add_entry("srv6_end_tbl", [ip6("2001:db8::1"), 1], "use_sid0", [])
    outs = extended.process(srv6_packet(), 1)
    assert outs, "extended router dropped the packet!"
    layers = dissect(outs[0].packet)
    v6 = layer_fields(layers, "ipv6")
    srh = layer_fields(layers, "srh")
    print(f"extended router (P7): forwarded on port {outs[0].port}")
    print(f"  new IPv6 dst     : {ip6('2001:db8::99') == v6['dstAddr']}"
          f" (copied from segment list)")
    print(f"  segmentsLeft     : 1 -> {srh['segmentsLeft']}")
    print(f"  hopLimit         : 64 -> {v6['hopLimit']}")


if __name__ == "__main__":
    main()
