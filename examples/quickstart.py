#!/usr/bin/env python3
"""Quickstart: write two µP4 modules, compose them, forward a packet.

This is the paper's Fig. 8 in miniature: an Ethernet main module invokes
an IPv4 module through µPA's Unicast interface, gets the next hop back
through an ``out`` parameter, and forwards.

Run:  python examples/quickstart.py
"""

from repro import build_dataplane, compile_module
from repro.net.build import PacketBuilder, dissect
from repro.net.ethernet import mac
from repro.net.ipv4 import ip4

IPV4_MODULE = """
header ipv4_h {
  bit<4> version; bit<4> ihl; bit<8> diffserv; bit<16> totalLen;
  bit<16> identification; bit<3> flags; bit<13> fragOffset;
  bit<8> ttl; bit<8> protocol; bit<16> hdrChecksum;
  bit<32> srcAddr; bit<32> dstAddr;
}
struct v4_t { ipv4_h ipv4; }

program IPv4 : implements Unicast<> {
  parser P(extractor ex, pkt p, out v4_t h) {
    state start { ex.extract(p, h.ipv4); transition accept; }
  }
  control C(pkt p, inout v4_t h, im_t im, out bit<16> nh) {
    action route(bit<16> next_hop) {
      h.ipv4.ttl = h.ipv4.ttl - 1;
      nh = next_hop;
    }
    action no_route() { im.drop(); }
    table lpm_tbl {
      key = { h.ipv4.dstAddr : lpm; }
      actions = { route; no_route; }
      default_action = no_route();
    }
    apply { nh = 0; lpm_tbl.apply(); }
  }
  control D(emitter em, pkt p, in v4_t h) {
    apply { em.emit(p, h.ipv4); }
  }
}
"""

MAIN_MODULE = """
header eth_h { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
struct l2_t { eth_h eth; }

IPv4(pkt p, im_t im, out bit<16> nh);

program Router : implements Unicast<> {
  parser P(extractor ex, pkt p, out l2_t h) {
    state start { ex.extract(p, h.eth); transition accept; }
  }
  control C(pkt p, inout l2_t h, im_t im) {
    bit<16> nh;
    IPv4() ipv4_i;
    action drop_pkt() { im.drop(); }
    action forward(bit<48> dmac, bit<48> smac, bit<8> port) {
      h.eth.dstMac = dmac;
      h.eth.srcMac = smac;
      im.set_out_port(port);
    }
    table forward_tbl {
      key = { nh : exact; }
      actions = { forward; drop_pkt; }
      default_action = drop_pkt();
    }
    apply {
      nh = 0;
      if (h.eth.etherType == 0x0800) {
        ipv4_i.apply(p, im, nh);
      }
      forward_tbl.apply();
    }
  }
  control D(emitter em, pkt p, in l2_t h) {
    apply { em.emit(p, h.eth); }
  }
}
Router(P, C, D) main;
"""


def main() -> None:
    # Stage 1 (Fig. 4a): compile each module to µP4-IR.
    ipv4_mod = compile_module(IPV4_MODULE, "ipv4.up4")
    main_mod = compile_module(MAIN_MODULE, "router.up4")

    # Stage 2 (Fig. 4b): link, compose, and target V1Model.
    dp = build_dataplane(main_mod, [ipv4_mod], target="v1model")
    print("composed program :", dp.composed.name)
    print("operational region:",
          f"El={dp.composed.region.extract_length}B",
          f"Bs={dp.composed.byte_stack_size}B")
    print("tables           :", ", ".join(dp.api.tables()))
    print()

    # Program the control plane.
    dp.api.add_entry("lpm_tbl", [(ip4("10.0.0.0"), 8)], "route", [7])
    dp.api.add_entry(
        "forward_tbl", [7], "forward",
        [mac("02:00:00:00:00:aa"), mac("02:00:00:00:00:bb"), 3],
    )

    # Send a packet.
    pkt = (
        PacketBuilder()
        .ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x0800)
        .ipv4("192.168.1.1", "10.1.2.3", 6, ttl=64)
        .payload(b"hello dataplane")
        .build()
    )
    outs = dp.inject(pkt, in_port=1)
    assert outs, "packet was dropped!"
    out = outs[0]
    print(f"packet forwarded on port {out.port}:")
    for layer, fields in dissect(out.packet):
        print(f"  {layer:10s}", {
            k: (hex(v) if isinstance(v, int) else v)
            for k, v in list(fields.items())[:6]
        })
    ttl = dissect(out.packet)[1][1]["ttl"]
    print(f"\nTTL decremented by the IPv4 module: 64 -> {ttl}")


if __name__ == "__main__":
    main()
